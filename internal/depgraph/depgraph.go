// Package depgraph builds register/memory dependency graphs over an
// instruction block and extracts the two dataflow quantities the in-core
// model needs: the critical path through one loop iteration and the
// longest loop-carried dependency (LCD) cycle.
//
// The graph is built for the steady state of an infinitely repeated block:
// edges are classified as intra-iteration or loop-carried (producer in
// iteration i, consumer in iteration i+1).
package depgraph

import (
	"fmt"
	"strings"

	"incore/internal/isa"
	"incore/internal/uarch"
)

// EdgeKind classifies dependency edges.
type EdgeKind int

const (
	// EdgeRAW is a true register read-after-write dependency.
	EdgeRAW EdgeKind = iota
	// EdgeWAW is a register write-after-write (false) dependency.
	EdgeWAW
	// EdgeWAR is a register write-after-read (false) dependency.
	EdgeWAR
	// EdgeMem is a store-to-load memory dependency.
	EdgeMem
)

// String names the edge kind.
func (k EdgeKind) String() string {
	switch k {
	case EdgeRAW:
		return "RAW"
	case EdgeWAW:
		return "WAW"
	case EdgeWAR:
		return "WAR"
	case EdgeMem:
		return "MEM"
	default:
		return fmt.Sprintf("EdgeKind(%d)", int(k))
	}
}

// Edge is one dependency from instruction From to instruction To.
type Edge struct {
	From, To int
	Kind     EdgeKind
	// Carried marks a loop-carried edge (From in iteration i, To in
	// iteration i+1).
	Carried bool
	// Lat is the latency in cycles charged along this edge.
	Lat float64
	// Reg is the register carrying the dependency (RAW/WAW/WAR).
	Reg isa.RegKey
	// ViaAccumulator marks RAW edges consumed as the accumulator operand
	// of a fused multiply-add; some cores forward these with reduced
	// latency (see sim).
	ViaAccumulator bool
}

// Node is the per-instruction dependency-relevant summary.
type Node struct {
	Index int
	Desc  uarch.Desc
	Eff   isa.Effects
}

// Options tune graph construction.
type Options struct {
	// IncludeFalseDeps adds WAW/WAR edges (a machine without register
	// renaming); the default models ideal renaming, matching OSACA.
	IncludeFalseDeps bool
	// MemCarriedWindow is the maximum |displacement delta| in bytes for
	// which a store and a load off the same base/index registers are
	// considered overlapping across iterations. Zero disables memory
	// carried dependencies.
	MemCarriedWindow int64
	// StoreForwardLat is the total store-to-load-result latency charged
	// across a forwarding edge plus the load itself; when zero,
	// LoadLat + 2 is used (matching the simulator's forwarding model).
	StoreForwardLat int
	// DegradeUnknown resolves instructions through the model's degraded
	// lookup path: mnemonics outside the instruction table receive a
	// synthesized conservative descriptor (uarch.MatchUnknown) instead
	// of failing graph construction. Node.Desc.Match records how each
	// instruction resolved, so callers can report coverage.
	DegradeUnknown bool
}

// DefaultOptions matches the analyzer's assumptions (ideal renaming,
// memory-carried detection within one cache line).
func DefaultOptions() Options {
	return Options{MemCarriedWindow: 64}
}

// regAccess locates one register read or write: instruction idx in
// simulated iteration iter.
type regAccess struct {
	idx  int
	iter int
}

// edgeIdent is the dedupe identity of an edge.
type edgeIdent struct {
	from, to int
	kind     EdgeKind
	carried  bool
	reg      isa.RegKey
}

// skelEdge is the model-independent structural form of an Edge: everything
// except the latency, which is a pure function of the edge kind and the
// endpoint descriptors and is filled in per model (fillEdges). Keeping the
// structure separate is what makes it cacheable across models (Skeleton).
type skelEdge struct {
	from, to int32
	kind     EdgeKind
	carried  bool
	viaAcc   bool
	reg      isa.RegKey
}

// Scratch holds every reusable arena graph construction and path
// extraction need, so a steady stream of graphs does O(1) heap work
// after warmup. The zero value is ready. A Scratch serves one
// goroutine at a time, and a Graph built against it (NewScratch) — its
// nodes, edges, and effect slices — is only valid until the scratch's
// next use; results that outlive the graph (paths, LCD reports) are
// freshly allocated and safe to retain.
type Scratch struct {
	graph    Graph
	interner isa.RegInterner
	effects  isa.EffectsArena
	nodes    []Node
	edges    []Edge
	skel     []skelEdge
	out      [][]int
	readIDs  [][]int32
	writeIDs [][]int32

	lastWriter  []regAccess
	lastReaders [][]regAccess
	dedupe      map[edgeIdent]struct{}

	dist []float64
	prev []int
}

// growOuter returns s resized to n entries, keeping existing entries (and
// therefore the capacity of any inner slices) wherever possible.
func growOuter[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return append(s[:cap(s)], make([]T, n-cap(s))...)
}

// Graph is the dependency graph of one block against one machine model.
type Graph struct {
	Block *isa.Block
	Model *uarch.Model
	Nodes []Node
	Edges []Edge
	// out[i] lists indices into Edges with From == i.
	out [][]int
	// scr backs all construction and query arenas.
	scr *Scratch
}

// New builds the dependency graph. Every instruction must resolve against
// the model.
func New(b *isa.Block, m *uarch.Model, opt Options) (*Graph, error) {
	return NewScratch(b, m, opt, nil)
}

// NewScratch is New with the graph's internal storage carved out of s's
// reusable arenas (a nil s uses fresh ones). The returned graph and its
// nodes/edges are only valid until s is next passed to NewScratch.
func NewScratch(b *isa.Block, m *uarch.Model, opt Options, s *Scratch) (*Graph, error) {
	if s == nil {
		s = &Scratch{}
	}
	s.interner.Reset()
	s.effects.Reset()
	g := &s.graph
	*g = Graph{Block: b, Model: m, scr: s}
	n := len(b.Instrs)
	s.nodes = growOuter(s.nodes, n)
	g.Nodes = s.nodes
	for i := range b.Instrs {
		in := &b.Instrs[i]
		eff := isa.InstrEffectsArena(in, m.Dialect, &s.effects)
		var d uarch.Desc
		if opt.DegradeUnknown {
			d = m.LookupEffDegraded(in, &eff)
		} else {
			var err error
			d, err = m.LookupEff(in, &eff)
			if err != nil {
				return nil, fmt.Errorf("depgraph: block %s: instr %d (%s): %w", b.Name, i, in.Mnemonic, err)
			}
		}
		g.Nodes[i] = Node{Index: i, Desc: d, Eff: eff}
	}
	skel := buildStructure(b, m.Dialect, g.Nodes, opt, s)
	g.Edges = fillEdges(s.edges[:0], skel, g.Nodes, m.LoadLat, opt)
	s.edges = g.Edges
	s.out = growOuter(s.out, n)
	for i := range s.out {
		s.out[i] = s.out[i][:0]
	}
	g.out = s.out[:n]
	for ei := range g.Edges {
		e := &g.Edges[ei]
		g.out[e.From] = append(g.out[e.From], ei)
	}
	return g, nil
}

// accumulatorKey returns the register a fused multiply-add reads as its
// accumulator, if the instruction is an FMA.
func accumulatorKey(in *isa.Instruction, d isa.Dialect) (isa.RegKey, bool) {
	m := in.Mnemonic
	isFMA := strings.HasPrefix(m, "vfma") || strings.HasPrefix(m, "vfnma") ||
		strings.HasPrefix(m, "vfms") || m == "fmla" || m == "fmls" ||
		m == "fmadd" || m == "fmsub" || m == "fnmadd" || m == "fnmsub"
	if !isFMA || len(in.Operands) == 0 {
		return isa.RegKey{}, false
	}
	if d == isa.DialectX86 {
		// AT&T: destination (and accumulator for the 231 form) is last.
		op := in.Operands[len(in.Operands)-1]
		if op.Kind == isa.OpReg {
			return op.Reg.Key(), true
		}
		return isa.RegKey{}, false
	}
	// AArch64: fmla vd, vn, vm accumulates into vd (operand 0);
	// fmadd rd, rn, rm, ra accumulates ra (operand 3).
	if m == "fmadd" || m == "fmsub" || m == "fnmadd" || m == "fnmsub" {
		if len(in.Operands) >= 4 && in.Operands[3].Kind == isa.OpReg {
			return in.Operands[3].Reg.Key(), true
		}
		return isa.RegKey{}, false
	}
	if in.Operands[0].Kind == isa.OpReg {
		return in.Operands[0].Reg.Key(), true
	}
	return isa.RegKey{}, false
}

// buildStructure appends the model-independent edge structure of one block
// to s.skel and returns it: register RAW edges (plus WAW/WAR under
// IncludeFalseDeps) in the order the two-iteration walk discovers them,
// deduped keeping first occurrences, followed by memory edges. Nothing here
// reads a uarch.Desc — structure depends only on block content, dialect,
// and the structural options — which is what lets a Skeleton cache it
// across models; latencies are filled per model by fillEdges.
//
// Only Eff is read from nodes, so structural-only callers (NewSkeleton)
// may pass nodes with zero Descs.
func buildStructure(b *isa.Block, d isa.Dialect, nodes []Node, opt Options, s *Scratch) []skelEdge {
	n := len(nodes)
	s.skel = s.skel[:0]
	// lastWriter[id] = index of the most recent writer of the register
	// with that interned ID in program order; simulate two consecutive
	// iterations to find carried edges. The interner is shared with the
	// simulator's compile step (isa.RegInterner): both lower RegKey maps
	// to dense-ID slices, so per-register tracking is slice indexing.
	s.readIDs = growOuter(s.readIDs, n)
	s.writeIDs = growOuter(s.writeIDs, n)
	for i := range nodes {
		s.readIDs[i] = s.interner.InternAll(s.readIDs[i][:0], nodes[i].Eff.Reads)
		s.writeIDs[i] = s.interner.InternAll(s.writeIDs[i][:0], nodes[i].Eff.Writes)
	}
	nRegs := s.interner.Len()
	s.lastWriter = growOuter(s.lastWriter, nRegs)
	for i := range s.lastWriter {
		s.lastWriter[i] = regAccess{idx: -1}
	}
	s.lastReaders = growOuter(s.lastReaders, nRegs)
	for i := range s.lastReaders {
		s.lastReaders[i] = s.lastReaders[i][:0]
	}
	lastWriter, lastReaders := s.lastWriter, s.lastReaders

	addRAW := func(from regAccess, to regAccess, key isa.RegKey) {
		if from.iter == 1 && to.iter == 1 {
			return // duplicate of the 0->0 intra edge
		}
		carried := from.iter != to.iter
		if from.iter == 0 && to.iter == 0 {
			carried = false
		}
		// Only keep iteration-0 sourced edges and 0->1 carried edges.
		if from.iter > to.iter {
			return
		}
		consumer := &b.Instrs[to.idx]
		acc, isAcc := accumulatorKey(consumer, d)
		s.skel = append(s.skel, skelEdge{
			from: int32(from.idx), to: int32(to.idx), kind: EdgeRAW, carried: carried,
			reg: key, viaAcc: isAcc && acc == key,
		})
	}

	for iter := 0; iter < 2; iter++ {
		for i := 0; i < n; i++ {
			node := &nodes[i]
			cur := regAccess{idx: i, iter: iter}
			for ri, r := range node.Eff.Reads {
				id := s.readIDs[i][ri]
				if w := lastWriter[id]; w.idx >= 0 {
					if !(w.iter == iter && w.idx == i) {
						addRAW(w, cur, r)
					}
				}
				lastReaders[id] = append(lastReaders[id], cur)
			}
			for wi, w := range node.Eff.Writes {
				id := s.writeIDs[i][wi]
				if opt.IncludeFalseDeps {
					if pw := lastWriter[id]; pw.idx >= 0 && !(pw.iter == 1 && iter == 1) && pw.iter <= iter {
						s.skel = append(s.skel, skelEdge{
							from: int32(pw.idx), to: int32(i), kind: EdgeWAW,
							carried: pw.iter != iter, reg: w,
						})
					}
					for _, rd := range lastReaders[id] {
						if rd.idx == i && rd.iter == iter {
							continue
						}
						if rd.iter == 1 && iter == 1 {
							continue
						}
						if rd.iter <= iter {
							s.skel = append(s.skel, skelEdge{
								from: int32(rd.idx), to: int32(i), kind: EdgeWAR,
								carried: rd.iter != iter, reg: w,
							})
						}
					}
				}
				lastWriter[id] = regAccess{idx: i, iter: iter}
				lastReaders[id] = lastReaders[id][:0]
			}
		}
	}
	s.skel = dedupeStructure(s.skel, s)
	buildMemStructure(nodes, opt, s)
	return s.skel
}

// dedupeStructure removes repeated edges in place, keeping first
// occurrences in order. Memory edges are appended after this runs,
// preserving the historical behavior of deduping register edges only.
func dedupeStructure(edges []skelEdge, s *Scratch) []skelEdge {
	if s.dedupe == nil {
		s.dedupe = make(map[edgeIdent]struct{}, len(edges))
	} else {
		clear(s.dedupe)
	}
	w := 0
	for _, e := range edges {
		k := edgeIdent{int(e.from), int(e.to), e.kind, e.carried, e.reg}
		if _, dup := s.dedupe[k]; dup {
			continue
		}
		s.dedupe[k] = struct{}{}
		edges[w] = e
		w++
	}
	return edges[:w]
}

// chainLat is the latency a producer contributes along a register
// dependency chain. For instructions with folded memory sources the load
// part is pipelined off the address stream and does not serialize register
// chains, so only the compute latency counts; pure loads contribute their
// full load-to-use latency.
func chainLat(d *uarch.Desc) float64 {
	if d.Lat > 0 {
		return float64(d.Lat)
	}
	return float64(d.TotalLat)
}

// buildMemStructure appends store→load RAW dependencies over the same
// address stream (same base and index registers) to s.skel. Direction
// matters for a loop whose index advances monotonically: with store
// displacement S and load displacement L, a later iteration's load
// re-reads a stored location only if S - L > 0 (the store runs ahead of
// the load in address space); equal displacements alias within one
// iteration when the store precedes the load in program order.
func buildMemStructure(nodes []Node, opt Options, s *Scratch) {
	if opt.MemCarriedWindow == 0 {
		return
	}
	sameStream := func(a, b *isa.MemOp) bool {
		if !a.Base.Valid() || !b.Base.Valid() {
			return false
		}
		if a.Base.Key() != b.Base.Key() {
			return false
		}
		ai, bi := a.Index.Valid(), b.Index.Valid()
		if ai != bi {
			return false
		}
		if ai && a.Index.Key() != b.Index.Key() {
			return false
		}
		return true
	}
	for si := range nodes {
		for _, st := range nodes[si].Eff.StoreOps {
			for li := range nodes {
				for _, ld := range nodes[li].Eff.LoadOps {
					if !sameStream(st, ld) {
						continue
					}
					delta := st.Disp - ld.Disp
					switch {
					case delta == 0 && si < li:
						s.skel = append(s.skel, skelEdge{
							from: int32(si), to: int32(li), kind: EdgeMem,
						})
					case delta > 0 && delta <= opt.MemCarriedWindow:
						s.skel = append(s.skel, skelEdge{
							from: int32(si), to: int32(li), kind: EdgeMem, carried: true,
						})
					}
				}
			}
		}
	}
}

// fillEdges materializes structural edges into dst with each kind's
// model-dependent latency: RAW edges charge the producer's chain latency,
// false dependencies one rename cycle, and memory edges the store-forward
// latency minus the consuming load's own chain contribution (charged by
// the load's outgoing edges, so the total store→load-result cost equals
// the forward latency), floored at one cycle.
func fillEdges(dst []Edge, skel []skelEdge, nodes []Node, loadLat int, opt Options) []Edge {
	fwd := opt.StoreForwardLat
	if fwd == 0 {
		fwd = loadLat + 2
	}
	for i := range skel {
		se := &skel[i]
		e := Edge{
			From: int(se.from), To: int(se.to), Kind: se.kind, Carried: se.carried,
			Reg: se.reg, ViaAccumulator: se.viaAcc,
		}
		switch se.kind {
		case EdgeRAW:
			e.Lat = chainLat(&nodes[se.from].Desc)
		case EdgeWAW, EdgeWAR:
			e.Lat = 1
		case EdgeMem:
			e.Lat = float64(fwd) - chainLat(&nodes[se.to].Desc)
			if e.Lat < 1 {
				e.Lat = 1
			}
		}
		dst = append(dst, e)
	}
	return dst
}

// CriticalPath returns the longest latency path through one iteration,
// considering only intra-iteration edges (cycles are impossible within one
// iteration of straight-line code).
func (g *Graph) CriticalPath() float64 {
	cp, _ := g.CriticalPathDetail()
	return cp
}

// CriticalPathDetail additionally returns the instruction indices on the
// critical path in program order (the OSACA report's CP column). The
// returned path is freshly allocated and safe to retain.
func (g *Graph) CriticalPathDetail() (float64, []int) {
	return g.CriticalPathDetailAppend(nil)
}

// CriticalPathDetailAppend is CriticalPathDetail writing the path into
// buf's backing array (buf[:0]); the path is only valid until the buffer
// is reused. A nil buf allocates, matching CriticalPathDetail.
func (g *Graph) CriticalPathDetailAppend(buf []int) (float64, []int) {
	n := len(g.Nodes)
	s := g.scr
	// dist[i] = longest path ending at i, including i's own latency.
	s.dist = growOuter(s.dist, n)
	s.prev = growOuter(s.prev, n)
	dist, prev := s.dist[:n], s.prev[:n]
	for i := range dist {
		dist[i] = 0
		prev[i] = -1
	}
	best, bestEnd := 0.0, -1
	for i := 0; i < n; i++ {
		self := float64(g.Nodes[i].Desc.TotalLat)
		if dist[i] < self {
			dist[i] = self
		}
		if dist[i] > best {
			best, bestEnd = dist[i], i
		}
		for _, ei := range g.out[i] {
			e := &g.Edges[ei]
			if e.Carried || e.To <= i {
				continue
			}
			if d := dist[i] + float64(g.Nodes[e.To].Desc.TotalLat); d > dist[e.To] {
				dist[e.To] = d
				prev[e.To] = i
			}
		}
	}
	path := buf[:0]
	for v := bestEnd; v >= 0; v = prev[v] {
		path = append(path, v)
	}
	for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
		path[l], path[r] = path[r], path[l]
	}
	return best, path
}

// LCDResult describes the dominant loop-carried dependency.
type LCDResult struct {
	// Cycles is the latency of the longest carried cycle per iteration.
	Cycles float64
	// Path lists the instruction indices on the dominant cycle, starting
	// at the carried edge's target.
	Path []int
	// ViaAccumulator is true when every latency-bearing edge on the
	// cycle is an FMA accumulator edge (candidates for accumulator
	// forwarding on Neoverse V2).
	ViaAccumulator bool
}

// LoopCarried computes the longest loop-carried dependency cycle,
// i.e. the steady-state minimum initiation interval due to dataflow.
//
// AccLatOverride, when non-negative, replaces the latency of RAW
// accumulator edges (used to model accumulator forwarding); pass -1 for
// table latencies.
func (g *Graph) LoopCarried(accLatOverride float64) LCDResult {
	return g.LoopCarriedAppend(accLatOverride, nil)
}

// LoopCarriedAppend is LoopCarried writing the winning cycle's path into
// buf's backing array (buf[:0]); the result's Path is only valid until
// the buffer is reused. A nil buf allocates, matching LoopCarried.
func (g *Graph) LoopCarriedAppend(accLatOverride float64, buf []int) LCDResult {
	// First pass finds the dominant carried edge by cycle latency alone;
	// the (allocating) path is materialized only for the winner.
	best := LCDResult{}
	bestEdge := -1
	for ei := range g.Edges {
		e := &g.Edges[ei]
		if !e.Carried {
			continue
		}
		// Longest path from e.To to e.From using intra-iteration edges,
		// then close the cycle with e.
		lat := g.longestPathBetween(e.To, e.From, accLatOverride)
		if lat < 0 {
			continue // e.From not reachable from e.To
		}
		closeLat := e.Lat
		if accLatOverride >= 0 && e.Kind == EdgeRAW && e.ViaAccumulator {
			closeLat = accLatOverride
		}
		total := lat + closeLat
		if total > best.Cycles {
			best = LCDResult{Cycles: total, ViaAccumulator: e.Kind == EdgeRAW && e.ViaAccumulator}
			bestEdge = ei
		}
	}
	if bestEdge >= 0 {
		e := &g.Edges[bestEdge]
		g.longestPathBetween(e.To, e.From, accLatOverride)
		best.Path = g.materializePath(e.To, e.From, buf)
	}
	return best
}

// longestPathBetween returns the longest latency path from src to dst using
// only intra-iteration edges, where path latency is the sum of edge
// latencies (edge latency = producer latency). Returns -1 when dst is
// unreachable; a zero-length path (src == dst) has latency 0. The
// predecessor chain is left in the scratch for materializePath.
func (g *Graph) longestPathBetween(src, dst int, accLatOverride float64) float64 {
	n := len(g.Nodes)
	s := g.scr
	const unreach = -1.0
	s.dist = growOuter(s.dist, n)
	s.prev = growOuter(s.prev, n)
	dist, prev := s.dist[:n], s.prev[:n]
	for i := range dist {
		dist[i] = unreach
		prev[i] = -1
	}
	dist[src] = 0
	for i := 0; i < n; i++ {
		if dist[i] == unreach {
			continue
		}
		for _, ei := range g.out[i] {
			e := &g.Edges[ei]
			if e.Carried || e.To <= i {
				continue
			}
			lat := e.Lat
			if accLatOverride >= 0 && e.Kind == EdgeRAW && e.ViaAccumulator {
				lat = accLatOverride
			}
			if d := dist[i] + lat; d > dist[e.To] {
				dist[e.To] = d
				prev[e.To] = i
			}
		}
	}
	return dist[dst]
}

// materializePath rebuilds the src→dst path from the predecessor chain the
// last longestPathBetween left behind, appended to buf[:0] (a nil buf
// yields a fresh slice safe to retain).
func (g *Graph) materializePath(src, dst int, buf []int) []int {
	prev := g.scr.prev
	path := buf[:0]
	for v := dst; v != -1; v = prev[v] {
		path = append(path, v)
		if v == src {
			break
		}
	}
	// Reverse.
	for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
		path[l], path[r] = path[r], path[l]
	}
	return path
}

// CarriedEdges returns the loop-carried edges (for reporting and tests).
func (g *Graph) CarriedEdges() []Edge {
	var out []Edge
	for _, e := range g.Edges {
		if e.Carried {
			out = append(out, e)
		}
	}
	return out
}
