package depgraph

import (
	"testing"

	"incore/internal/isa"
	"incore/internal/uarch"
)

func mustGraph(t *testing.T, arch, src string, opt Options) *Graph {
	t.Helper()
	m := uarch.MustGet(arch)
	b, err := isa.ParseBlock("t", arch, m.Dialect, src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g, err := New(b, m, opt)
	if err != nil {
		t.Fatalf("graph: %v", err)
	}
	return g
}

func TestEdgeKindString(t *testing.T) {
	for k, want := range map[EdgeKind]string{EdgeRAW: "RAW", EdgeWAW: "WAW", EdgeWAR: "WAR", EdgeMem: "MEM"} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestIntraIterationRAW(t *testing.T) {
	g := mustGraph(t, "goldencove", `
	vmovupd (%rsi), %ymm0
	vaddpd %ymm0, %ymm1, %ymm2
	vmovupd %ymm2, (%rdi)
`, DefaultOptions())
	// Edge 0 -> 1 through ymm0 and 1 -> 2 through ymm2 (store data).
	var saw01, saw12 bool
	for _, e := range g.Edges {
		if e.From == 0 && e.To == 1 && e.Kind == EdgeRAW && !e.Carried {
			saw01 = true
		}
		if e.From == 1 && e.To == 2 && e.Kind == EdgeRAW && !e.Carried {
			saw12 = true
		}
	}
	if !saw01 || !saw12 {
		t.Errorf("missing RAW edges: %+v", g.Edges)
	}
}

func TestLoopCarriedAccumulator(t *testing.T) {
	// Sum reduction: carried fadd chain with latency 2 on V2.
	g := mustGraph(t, "neoversev2", `
	ldr d1, [x1, x3, lsl #3]
	fadd d0, d0, d1
	add x3, x3, #1
	cmp x3, x4
	b.ne .L0
`, DefaultOptions())
	lcd := g.LoopCarried(-1)
	if lcd.Cycles != 2 {
		t.Errorf("sum LCD = %.1f, want 2 (fadd latency)", lcd.Cycles)
	}
}

func TestLoopCarriedChainGS(t *testing.T) {
	// Gauss-Seidel register chain: fadd(2) + fmul(3) = 5 on V2.
	g := mustGraph(t, "neoversev2", `
	ldr d1, [x5]
	ldr d2, [x6]
	fadd d1, d1, d2
	ldr d2, [x1, #8]
	fadd d1, d1, d2
	fadd d1, d1, d0
	fmul d0, d1, d15
	str d0, [x1]
	add x1, x1, #8
	add x5, x5, #8
	add x6, x6, #8
	cmp x1, x4
	b.ne .L0
`, DefaultOptions())
	lcd := g.LoopCarried(-1)
	if lcd.Cycles != 5 {
		t.Errorf("GS LCD = %.1f, want 5 (fadd 2 + fmul 3)", lcd.Cycles)
	}
}

func TestIndexChainIsCarried(t *testing.T) {
	g := mustGraph(t, "goldencove", `
	addq $8, %rax
	cmpq %rbx, %rax
	jne .L0
`, DefaultOptions())
	lcd := g.LoopCarried(-1)
	if lcd.Cycles != 1 {
		t.Errorf("index LCD = %.1f, want 1", lcd.Cycles)
	}
}

func TestCriticalPathLongerThanLCD(t *testing.T) {
	g := mustGraph(t, "goldencove", `
	vmovupd (%rsi), %ymm0
	vmulpd %ymm0, %ymm0, %ymm1
	vmulpd %ymm1, %ymm1, %ymm2
	vmovupd %ymm2, (%rdi)
`, DefaultOptions())
	cp := g.CriticalPath()
	// load (7) + mul (4) + mul (4) = 15 at least.
	if cp < 15 {
		t.Errorf("critical path = %.1f, want >= 15", cp)
	}
}

func TestFalseDepsOnlyWhenRequested(t *testing.T) {
	src := `
	vmovupd (%rsi), %ymm0
	vmovupd %ymm0, (%rdi)
	vmovupd 32(%rsi), %ymm0
	vmovupd %ymm0, 32(%rdi)
`
	ideal := mustGraph(t, "goldencove", src, DefaultOptions())
	for _, e := range ideal.Edges {
		if e.Kind == EdgeWAW || e.Kind == EdgeWAR {
			t.Errorf("false dep present with renaming: %+v", e)
		}
	}
	opt := DefaultOptions()
	opt.IncludeFalseDeps = true
	noRename := mustGraph(t, "goldencove", src, opt)
	var falseDeps int
	for _, e := range noRename.Edges {
		if e.Kind == EdgeWAW || e.Kind == EdgeWAR {
			falseDeps++
		}
	}
	if falseDeps == 0 {
		t.Error("expected WAW/WAR edges with IncludeFalseDeps")
	}
}

func TestMemCarriedDirection(t *testing.T) {
	// Gauss-Seidel memory round trip: store (%rsi), load -8(%rsi):
	// store.Disp - load.Disp = +8 -> carried RAW.
	g := mustGraph(t, "goldencove", `
	vmovsd -8(%rsi,%rax,8), %xmm1
	vmulsd %xmm15, %xmm1, %xmm1
	vmovsd %xmm1, (%rsi,%rax,8)
	incq %rax
	cmpq %rbx, %rax
	jne .L0
`, DefaultOptions())
	var carried bool
	for _, e := range g.Edges {
		if e.Kind == EdgeMem && e.Carried {
			carried = true
		}
	}
	if !carried {
		t.Error("expected carried memory edge for the GS round trip")
	}
	lcd := g.LoopCarried(-1)
	// fwd total (LoadLat+2 = 9) + fmul (4) = 13.
	if lcd.Cycles < 12 || lcd.Cycles > 14 {
		t.Errorf("GS memory LCD = %.1f, want ~13", lcd.Cycles)
	}
}

func TestMemForwardDirectionNegativeNoDep(t *testing.T) {
	// Store at disp 0, load at disp +8 (load runs AHEAD of the store):
	// never a RAW across iterations.
	g := mustGraph(t, "goldencove", `
	vmovsd 8(%rsi,%rax,8), %xmm1
	vmulsd %xmm15, %xmm1, %xmm1
	vmovsd %xmm1, (%rsi,%rax,8)
	incq %rax
	cmpq %rbx, %rax
	jne .L0
`, DefaultOptions())
	for _, e := range g.Edges {
		if e.Kind == EdgeMem {
			t.Errorf("unexpected memory edge: %+v", e)
		}
	}
}

func TestIntraIterationMemDep(t *testing.T) {
	// Store then load of the same address within one iteration.
	g := mustGraph(t, "goldencove", `
	vmovsd %xmm1, (%rsi,%rax,8)
	vmovsd (%rsi,%rax,8), %xmm2
	incq %rax
	cmpq %rbx, %rax
	jne .L0
`, DefaultOptions())
	var intra bool
	for _, e := range g.Edges {
		if e.Kind == EdgeMem && !e.Carried && e.From == 0 && e.To == 1 {
			intra = true
		}
	}
	if !intra {
		t.Error("expected intra-iteration store->load edge")
	}
}

func TestAccumulatorEdgeDetection(t *testing.T) {
	g := mustGraph(t, "neoversev2", `
	fmla v0.2d, v1.2d, v2.2d
	b.ne .L0
`, DefaultOptions())
	var acc bool
	for _, e := range g.Edges {
		if e.Kind == EdgeRAW && e.Carried && e.ViaAccumulator {
			acc = true
		}
	}
	if !acc {
		t.Error("fmla self-accumulation must be flagged ViaAccumulator")
	}
	lcd := g.LoopCarried(-1)
	if lcd.Cycles != 4 {
		t.Errorf("fmla chain LCD = %.1f, want 4", lcd.Cycles)
	}
	if !lcd.ViaAccumulator {
		t.Error("LCD must be flagged as accumulator-carried")
	}
	// With accumulator-forwarding override the chain shrinks.
	fwd := g.LoopCarried(2)
	if fwd.Cycles != 2 {
		t.Errorf("forwarded fmla chain = %.1f, want 2", fwd.Cycles)
	}
}

func TestChainLatPipelinesFoldedLoads(t *testing.T) {
	// Folded-load accumulation: the carried chain must cost only the add
	// latency, not load+add.
	g := mustGraph(t, "goldencove", `
	vaddsd (%rsi,%rax,8), %xmm0, %xmm0
	incq %rax
	cmpq %rbx, %rax
	jne .L0
`, DefaultOptions())
	lcd := g.LoopCarried(-1)
	if lcd.Cycles != 2 {
		t.Errorf("folded-load sum LCD = %.1f, want 2 (vaddsd latency only)", lcd.Cycles)
	}
}

func TestCarriedEdges(t *testing.T) {
	g := mustGraph(t, "goldencove", `
	vaddsd %xmm1, %xmm0, %xmm0
	jne .L0
`, DefaultOptions())
	ce := g.CarriedEdges()
	if len(ce) == 0 {
		t.Fatal("expected carried edges")
	}
	for _, e := range ce {
		if !e.Carried {
			t.Error("CarriedEdges returned a non-carried edge")
		}
	}
}

func TestUnknownInstructionErrors(t *testing.T) {
	m := uarch.MustGet("zen4")
	b := &isa.Block{Name: "x", Arch: "zen4", Dialect: m.Dialect,
		Instrs: []isa.Instruction{{Mnemonic: "bogus"}}}
	if _, err := New(b, m, DefaultOptions()); err == nil {
		t.Error("unknown instruction must fail graph construction")
	}
}
