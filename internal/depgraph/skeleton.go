package depgraph

import (
	"fmt"

	"incore/internal/isa"
	"incore/internal/uarch"
)

// Skeleton is the model-independent compiled form of a block's dependency
// structure: per-instruction architectural effects plus the deduped edge
// list with everything but latencies resolved, and the precomputed
// outgoing-edge adjacency. Building a graph for a model then reduces to
// resolving descriptors (ResolveDescs, itself cacheable per model) and
// filling edge latencies (Instantiate) — no effect extraction, no register
// interning, no two-iteration walk, no dedupe map.
//
// A Skeleton is immutable after NewSkeleton and safe to share across
// goroutines and models. It retains its source block (pinning the MemOp
// pointers the effects reference), so cached skeletons keep their blocks
// alive — intended for the process-lifetime artifact cache in
// internal/pipeline.
type Skeleton struct {
	block   *isa.Block
	dialect isa.Dialect
	// Structural options the edge list was built under; Instantiate
	// callers must pass options agreeing on these fields.
	falseDeps bool
	memWindow int64

	effs  []isa.Effects
	edges []skelEdge
	// out[i] lists indices into edges with from == i; shared read-only by
	// every instantiated graph.
	out [][]int
}

// NewSkeleton builds the durable structure of b under opt's structural
// fields (IncludeFalseDeps, MemCarriedWindow; latency-side options are
// applied at Instantiate). The block's own dialect drives effect
// extraction, so the skeleton serves any model of that dialect.
func NewSkeleton(b *isa.Block, opt Options) (*Skeleton, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	n := len(b.Instrs)
	sk := &Skeleton{
		block:     b,
		dialect:   b.Dialect,
		falseDeps: opt.IncludeFalseDeps,
		memWindow: opt.MemCarriedWindow,
		effs:      make([]isa.Effects, n),
	}
	nodes := make([]Node, n)
	for i := range b.Instrs {
		sk.effs[i] = isa.InstrEffects(&b.Instrs[i], b.Dialect)
		nodes[i] = Node{Index: i, Eff: sk.effs[i]}
	}
	s := &Scratch{}
	skel := buildStructure(b, b.Dialect, nodes, opt, s)
	sk.edges = append([]skelEdge(nil), skel...)
	sk.out = make([][]int, n)
	for ei := range sk.edges {
		f := sk.edges[ei].from
		sk.out[f] = append(sk.out[f], ei)
	}
	return sk, nil
}

// Block returns the block the skeleton was built from.
func (sk *Skeleton) Block() *isa.Block { return sk.block }

// Matches reports whether opt agrees with the skeleton on the structural
// options its edge list was built under.
func (sk *Skeleton) Matches(opt Options) bool {
	return sk.falseDeps == opt.IncludeFalseDeps && sk.memWindow == opt.MemCarriedWindow
}

// ResolveDescs resolves every instruction's descriptor against one model —
// the per-(block, model) half of graph construction that Instantiate
// consumes. The returned slice is freshly allocated, treated as immutable,
// and safe to cache and share across goroutines; error text matches what
// NewScratch reports for the same lookup failure.
func (sk *Skeleton) ResolveDescs(m *uarch.Model, degrade bool) ([]uarch.Desc, error) {
	b := sk.block
	descs := make([]uarch.Desc, len(b.Instrs))
	for i := range b.Instrs {
		in := &b.Instrs[i]
		eff := sk.effs[i]
		if degrade {
			descs[i] = m.LookupEffDegraded(in, &eff)
			continue
		}
		d, err := m.LookupEff(in, &eff)
		if err != nil {
			return nil, fmt.Errorf("depgraph: block %s: instr %d (%s): %w", b.Name, i, in.Mnemonic, err)
		}
		descs[i] = d
	}
	return descs, nil
}

// Instantiate materializes the skeleton against one model into s's arenas,
// producing a graph identical to NewScratch(b, m, opt, s) — same nodes,
// same edge order, same latencies. b must be content-identical to the
// skeleton's source block (same instruction sequence and dialect), descs
// must come from ResolveDescs against m (or a cache of it) with
// opt.DegradeUnknown, and opt must satisfy Matches; the artifact keys in
// internal/pipeline enforce all three. The graph is valid until s's next
// use, like NewScratch.
func (sk *Skeleton) Instantiate(b *isa.Block, m *uarch.Model, descs []uarch.Desc, opt Options, s *Scratch) *Graph {
	if s == nil {
		s = &Scratch{}
	}
	g := &s.graph
	*g = Graph{Block: b, Model: m, scr: s}
	n := len(sk.effs)
	s.nodes = growOuter(s.nodes, n)
	g.Nodes = s.nodes[:n]
	for i := range g.Nodes {
		g.Nodes[i] = Node{Index: i, Desc: descs[i], Eff: sk.effs[i]}
	}
	g.Edges = fillEdges(s.edges[:0], sk.edges, g.Nodes, m.LoadLat, opt)
	s.edges = g.Edges
	g.out = sk.out
	return g
}

// SizeEstimate approximates the skeleton's retained heap bytes for cache
// accounting. It is an estimate by design: fixed per-element costs stand
// in for exact allocator sizes, and the retained source block is counted
// by the parsed-block tier, not here.
func (sk *Skeleton) SizeEstimate() int {
	const (
		edgeBytes = 40 // skelEdge
		effBytes  = 96 // isa.Effects header
	)
	size := 128 + len(sk.edges)*edgeBytes + len(sk.effs)*effBytes
	for i := range sk.effs {
		e := &sk.effs[i]
		size += 24*(len(e.Reads)+len(e.Writes)) + 8*(len(e.LoadOps)+len(e.StoreOps))
	}
	for _, o := range sk.out {
		size += 24 + 8*len(o)
	}
	return size
}
