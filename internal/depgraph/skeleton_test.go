package depgraph

import (
	"testing"

	"incore/internal/isa"
	"incore/internal/kernels"
	"incore/internal/uarch"
)

// graphsEqual asserts g2 (skeleton-instantiated) is structurally and
// numerically identical to g1 (direct NewScratch build): same nodes in
// order, same edges in order with equal latencies, same derived paths.
func graphsEqual(t *testing.T, label string, g1, g2 *Graph) {
	t.Helper()
	if len(g1.Nodes) != len(g2.Nodes) {
		t.Fatalf("%s: node count %d vs %d", label, len(g1.Nodes), len(g2.Nodes))
	}
	for i := range g1.Nodes {
		n1, n2 := &g1.Nodes[i], &g2.Nodes[i]
		if n1.Index != n2.Index || n1.Desc.Lat != n2.Desc.Lat ||
			n1.Desc.TotalLat != n2.Desc.TotalLat || n1.Desc.Match != n2.Desc.Match {
			t.Fatalf("%s: node %d differs: %+v vs %+v", label, i, n1.Desc, n2.Desc)
		}
	}
	if len(g1.Edges) != len(g2.Edges) {
		t.Fatalf("%s: edge count %d vs %d", label, len(g1.Edges), len(g2.Edges))
	}
	for i := range g1.Edges {
		e1, e2 := g1.Edges[i], g2.Edges[i]
		if e1.From != e2.From || e1.To != e2.To || e1.Kind != e2.Kind ||
			e1.Carried != e2.Carried || e1.Lat != e2.Lat ||
			e1.Reg != e2.Reg || e1.ViaAccumulator != e2.ViaAccumulator {
			t.Fatalf("%s: edge %d differs: %+v vs %+v", label, i, e1, e2)
		}
	}
	cp1, path1 := g1.CriticalPathDetail()
	cp2, path2 := g2.CriticalPathDetail()
	if cp1 != cp2 || len(path1) != len(path2) {
		t.Fatalf("%s: critical path %f (%d nodes) vs %f (%d nodes)",
			label, cp1, len(path1), cp2, len(path2))
	}
	for i := range path1 {
		if path1[i] != path2[i] {
			t.Fatalf("%s: CP path index %d: %d vs %d", label, i, path1[i], path2[i])
		}
	}
	l1, l2 := g1.LoopCarried(-1), g2.LoopCarried(-1)
	if l1.Cycles != l2.Cycles || len(l1.Path) != len(l2.Path) {
		t.Fatalf("%s: LCD %f vs %f", label, l1.Cycles, l2.Cycles)
	}
}

// TestSkeletonInstantiateMatchesNewScratch is the equivalence contract the
// compile-once analysis path rests on: for every suite kernel on every
// built-in model, a skeleton-instantiated graph is identical to a direct
// build — same edge order (byte-identity of downstream reports depends on
// it), same latencies, same derived path metrics.
func TestSkeletonInstantiateMatchesNewScratch(t *testing.T) {
	opts := []Options{
		DefaultOptions(),
		func() Options { o := DefaultOptions(); o.IncludeFalseDeps = true; return o }(),
		func() Options { o := DefaultOptions(); o.MemCarriedWindow = 8; return o }(),
		func() Options { o := DefaultOptions(); o.StoreForwardLat = 5; return o }(),
	}
	for _, arch := range []string{"goldencove", "zen4", "neoversev2"} {
		m := uarch.MustGet(arch)
		for ki := range kernels.Kernels {
			k := &kernels.Kernels[ki]
			b, err := kernels.Generate(k, kernels.Config{
				Arch: arch, Compiler: kernels.CompilersFor(arch)[0], Opt: kernels.O3,
			})
			if err != nil {
				t.Fatal(err)
			}
			for oi, opt := range opts {
				opt.DegradeUnknown = true
				label := arch + "/" + k.Name + "/opt" + string(rune('0'+oi))

				var s1 Scratch
				g1, err := NewScratch(b, m, opt, &s1)
				if err != nil {
					t.Fatalf("%s: NewScratch: %v", label, err)
				}

				sk, err := NewSkeleton(b, opt)
				if err != nil {
					t.Fatalf("%s: NewSkeleton: %v", label, err)
				}
				if !sk.Matches(opt) {
					t.Fatalf("%s: skeleton does not match its own options", label)
				}
				descs, err := sk.ResolveDescs(m, opt.DegradeUnknown)
				if err != nil {
					t.Fatalf("%s: ResolveDescs: %v", label, err)
				}
				var s2 Scratch
				g2 := sk.Instantiate(b, m, descs, opt, &s2)
				graphsEqual(t, label, g1, g2)
			}
		}
	}
}

// TestSkeletonSharedAcrossModels pins the skeleton's model independence:
// one skeleton instantiates correctly against both x86 models (same
// dialect), matching each model's direct build.
func TestSkeletonSharedAcrossModels(t *testing.T) {
	src := ".L0:\n\tvmovapd (%rax,%rcx,8), %ymm0\n\tvfmadd231pd %ymm1, %ymm2, %ymm0\n\tvmovapd %ymm0, (%rbx,%rcx,8)\n\taddq $4, %rcx\n\tcmpq %rdx, %rcx\n\tjb .L0\n"
	opt := DefaultOptions()
	opt.DegradeUnknown = true
	b, err := isa.ParseBlock("shared", "goldencove", isa.DialectX86, src)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := NewSkeleton(b, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, arch := range []string{"goldencove", "zen4"} {
		m := uarch.MustGet(arch)
		var s1 Scratch
		g1, err := NewScratch(b, m, opt, &s1)
		if err != nil {
			t.Fatal(err)
		}
		descs, err := sk.ResolveDescs(m, true)
		if err != nil {
			t.Fatal(err)
		}
		var s2 Scratch
		g2 := sk.Instantiate(b, m, descs, opt, &s2)
		graphsEqual(t, arch, g1, g2)
	}
}

// TestSkeletonSizeEstimatePositive sanity-checks the cache accounting
// hook: non-trivial skeletons report a plausible non-zero footprint.
func TestSkeletonSizeEstimatePositive(t *testing.T) {
	m := uarch.MustGet("zen4")
	b, err := isa.ParseBlock("t", "zen4", m.Dialect,
		".L0:\n\taddq $8, %rax\n\tcmpq %rbx, %rax\n\tjb .L0\n")
	if err != nil {
		t.Fatal(err)
	}
	sk, err := NewSkeleton(b, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := sk.SizeEstimate(); got < 128 {
		t.Errorf("SizeEstimate() = %d; want a plausible positive footprint", got)
	}
	if sk.Block() != b {
		t.Error("Block() must return the source block")
	}
}
