package experiments

import (
	"strings"
	"testing"

	"incore/internal/ecm"
)

func TestECMStudy(t *testing.T) {
	s, err := RunECM()
	if err != nil {
		t.Fatal(err)
	}
	// 3 archs x 5 kernels x 4 levels.
	if len(s.Rows) != 60 {
		t.Fatalf("rows = %d, want 60", len(s.Rows))
	}
	byKey := map[string]ECMRow{}
	for _, r := range s.Rows {
		byKey[r.Arch+"/"+r.Kernel+"/"+r.Level.String()] = r
	}
	// Deeper levels cannot be faster.
	for _, arch := range []string{"neoversev2", "goldencove", "zen4"} {
		for _, k := range []string{"striad", "add", "j2d5"} {
			prev := 0.0
			for _, lvl := range []ecm.MemLevel{ecm.L1, ecm.L2, ecm.L3, ecm.MEM} {
				r := byKey[arch+"/"+k+"/"+lvl.String()]
				if r.TECM < prev-1e-9 {
					t.Errorf("%s/%s: TECM decreased at %s", arch, k, lvl)
				}
				prev = r.TECM
			}
		}
	}
	// Memory-resident kernels have a saturation point within the socket.
	for _, arch := range []string{"neoversev2", "goldencove", "zen4"} {
		r := byKey[arch+"/striad/MEM"]
		if r.NSat < 2 || r.NSat > 96 {
			t.Errorf("%s striad n_sat = %d, implausible", arch, r.NSat)
		}
	}
	// Grace's WA evasion makes its memory-resident store-heavy kernels
	// relatively cheaper: compare the MEM-minus-L3 delta (pure memory
	// term) for the add kernel against Genoa, normalised by bandwidth.
	out := s.Render()
	for _, want := range []string{"ECM", "n_sat", "striad", "MEM"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
