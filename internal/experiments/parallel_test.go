package experiments

import (
	"testing"

	"incore/internal/pipeline"
)

// TestParallelOutputMatchesSerial is the acceptance property of the
// pipeline refactor: every runner renders byte-identical output at -j 8
// and -j 1. The serial pass runs first and fills the shared memo cache;
// the parallel pass must reproduce its bytes exactly (and, thanks to the
// cache, mostly from hits).
func TestParallelOutputMatchesSerial(t *testing.T) {
	old := pipeline.Default().Workers()
	defer pipeline.SetDefaultWorkers(old)

	runners := map[string]func() (string, error){
		"table1": func() (string, error) { r, err := RunTable1(); return render(r, err) },
		"table2": func() (string, error) { r, err := RunTable2(); return render(r, err) },
		"table3": func() (string, error) { r, err := RunTable3(); return render(r, err) },
		"fig2":   func() (string, error) { r, err := RunFig2(); return render(r, err) },
		"fig3":   func() (string, error) { r, err := RunFig3(); return render(r, err) },
		"fig4":   func() (string, error) { r, err := RunFig4(); return render(r, err) },
		"ecm":    func() (string, error) { r, err := RunECM(); return render(r, err) },
		"nodeperf": func() (string, error) {
			r, err := RunNodePerf()
			return render(r, err)
		},
	}

	pipeline.SetDefaultWorkers(1)
	serial := map[string]string{}
	for name, run := range runners {
		out, err := run()
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		serial[name] = out
	}

	before := pipeline.Shared().Stats()
	pipeline.SetDefaultWorkers(8)
	for name, run := range runners {
		out, err := run()
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		if out != serial[name] {
			t.Errorf("%s: -j 8 output differs from -j 1 (%d vs %d bytes)", name, len(out), len(serial[name]))
		}
	}
	after := pipeline.Shared().Stats()
	if after.Hits <= before.Hits {
		t.Errorf("parallel re-run should hit the memo cache: hits %d -> %d", before.Hits, after.Hits)
	}
	if after.Misses != before.Misses {
		t.Errorf("parallel re-run of cached work must add no misses: %d -> %d", before.Misses, after.Misses)
	}
}

type renderer interface{ Render() string }

func render(r renderer, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}
