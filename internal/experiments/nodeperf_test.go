package experiments

import (
	"strings"
	"testing"
)

func TestNodePerf(t *testing.T) {
	np, err := RunNodePerf()
	if err != nil {
		t.Fatal(err)
	}
	if len(np.Cells) != 13 {
		t.Fatalf("kernels = %d, want 13", len(np.Cells))
	}
	// Streaming kernels are memory-bound at full socket on all machines,
	// and Grace wins them (highest measured bandwidth + WA evasion).
	for _, k := range []string{"copy", "add", "striad", "schtriad", "j3d7"} {
		w, perf := np.Winner(k)
		if w != "neoversev2" {
			t.Errorf("%s winner = %s, want neoversev2 (bandwidth + WA evasion)", k, w)
		}
		if perf <= 0 {
			t.Errorf("%s: non-positive performance", k)
		}
		for _, arch := range []string{"neoversev2", "goldencove", "zen4"} {
			if !np.Cells[k][arch].MemBound {
				t.Errorf("%s on %s must be memory-bound at full socket", k, arch)
			}
		}
	}
	// π is compute-bound; Genoa's 96 cores win (the paper's node-level
	// throughput argument).
	w, _ := np.Winner("pi")
	if w != "zen4" {
		t.Errorf("pi winner = %s, want zen4 (most cores, best divide throughput)", w)
	}
	if np.Cells["pi"]["zen4"].MemBound {
		t.Error("pi must be core-bound (no memory traffic)")
	}
	// Grace's WA advantage: for the store-only init kernel, the
	// GCS/Genoa ratio must exceed the pure bandwidth ratio (467/360)
	// because Genoa pays double traffic for stores.
	gcs := np.Cells["init"]["neoversev2"].GUPs
	gen := np.Cells["init"]["zen4"].GUPs
	bwRatio := 467.0 / 360.0
	if gcs/gen < bwRatio*1.3 {
		t.Errorf("init GCS/Genoa = %.2f, want > %.2f x 1.3 (WA evasion advantage)", gcs/gen, bwRatio)
	}
	// Core-bound numbers must always exceed memory-resident ones.
	for k, byArch := range np.Cells {
		for arch, c := range byArch {
			if c.CoreBoundGUPs < c.GUPs-1e-9 {
				t.Errorf("%s/%s: core-bound %f below mem-resident %f", k, arch, c.CoreBoundGUPs, c.GUPs)
			}
		}
	}
	out := np.Render()
	for _, want := range []string{"winner", "GCS", "Genoa", "core", "mem"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
