package experiments

import (
	"fmt"
	"strings"

	"incore/internal/freq"
	"incore/internal/isa"
	"incore/internal/pipeline"
)

// Fig2Series is one frequency-vs-cores curve.
type Fig2Series struct {
	Arch  string
	Label string
	Ext   isa.Ext
	// FreqGHz[i] is the sustained frequency at i+1 active cores.
	FreqGHz []float64
}

// Fig2 reproduces the sustained-clock-frequency study: for each system
// and ISA extension, sustained all-active-core frequency across one chip.
type Fig2 struct {
	Series []Fig2Series
}

// RunFig2 evaluates the frequency governor for the paper's curves:
// GCS (one curve: no ISA dependence), SPR AVX-512 vs AVX/SSE, Genoa (one
// curve).
func RunFig2() (*Fig2, error) {
	specs := []struct {
		arch  string
		label string
		ext   isa.Ext
	}{
		{"neoversev2", "GCS", isa.ExtSVE},
		{"goldencove", "SPR AVX-512", isa.ExtAVX512},
		{"goldencove", "SPR AVX/SSE", isa.ExtAVX},
		{"zen4", "Genoa", isa.ExtAVX512},
	}
	series, err := pipeline.MapN(pipeline.Default(), len(specs), func(i int) (Fig2Series, error) {
		s := specs[i]
		g, err := freq.For(s.arch)
		if err != nil {
			return Fig2Series{}, err
		}
		curve, err := g.Curve(s.ext)
		if err != nil {
			return Fig2Series{}, err
		}
		return Fig2Series{Arch: s.arch, Label: s.label, Ext: s.ext, FreqGHz: curve}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig2{Series: series}, nil
}

// At returns the sustained frequency of a series at n cores.
func (s *Fig2Series) At(n int) float64 {
	if n < 1 || n > len(s.FreqGHz) {
		return 0
	}
	return s.FreqGHz[n-1]
}

// Render draws the curves as a sampled table plus the paper's headline
// observations.
func (f *Fig2) Render() string {
	var sb strings.Builder
	sb.WriteString("Fig. 2 — sustained CPU clock frequency [GHz] for arithmetic-heavy code vs. active cores\n")
	samples := []int{1, 4, 8, 13, 16, 26, 32, 40, 52, 64, 72, 80, 96}
	head := []string{"series"}
	for _, n := range samples {
		head = append(head, fmt.Sprintf("%d", n))
	}
	var rows [][]string
	for _, s := range f.Series {
		row := []string{s.Label}
		for _, n := range samples {
			if n > len(s.FreqGHz) {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%.2f", s.At(n)))
		}
		rows = append(rows, row)
	}
	writeTable(&sb, head, rows)
	for _, s := range f.Series {
		n := len(s.FreqGHz)
		fmt.Fprintf(&sb, "%-12s full-socket sustained: %.2f GHz (%.0f%% of single-core max %.2f GHz)\n",
			s.Label, s.At(n), 100*s.At(n)/s.At(1), s.At(1))
	}
	gcs := f.Series[0].At(72)
	spr := f.Series[1].At(52)
	fmt.Fprintf(&sb, "GCS vs SPR AVX-512 sustained-frequency advantage: %.1fx (paper: 1.7x)\n", gcs/spr)
	return sb.String()
}
