package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestTable1(t *testing.T) {
	tab, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r.MeasuredBWGBs <= 0 || r.MeasuredBWGBs > r.TheoreticalBWGBs {
			t.Errorf("%s: measured %.0f vs theoretical %.0f", r.Node.Key, r.MeasuredBWGBs, r.TheoreticalBWGBs)
		}
		if r.AchievablePeakTFs > r.TheoreticalPeakTFs {
			t.Errorf("%s: achievable peak exceeds theoretical", r.Node.Key)
		}
	}
	out := tab.Render()
	for _, want := range []string{"Grace", "8470", "9684X", "ccNUMA"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I render missing %q", want)
		}
	}
}

func TestTable2(t *testing.T) {
	tab, err := RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table II verbatim.
	byKey := map[string]Table2Row{}
	for _, r := range tab.Rows {
		byKey[r.Model.Key] = r
	}
	if byKey["neoversev2"].Ports != 17 || byKey["goldencove"].Ports != 12 || byKey["zen4"].Ports != 13 {
		t.Error("port counts do not match Table II")
	}
	if byKey["neoversev2"].SIMDBytes != 16 || byKey["goldencove"].SIMDBytes != 64 || byKey["zen4"].SIMDBytes != 32 {
		t.Error("SIMD widths do not match Table II")
	}
	if byKey["neoversev2"].LoadsBytes != 48 { // 3 x 16 B
		t.Errorf("GCS loads/cy = %d B, want 48", byKey["neoversev2"].LoadsBytes)
	}
	if byKey["goldencove"].LoadsBytes != 128 { // 2 x 64 B
		t.Errorf("SPR loads/cy = %d B, want 128", byKey["goldencove"].LoadsBytes)
	}
	if byKey["zen4"].StoresBytes != 32 { // 1 x 32 B
		t.Errorf("Genoa stores/cy = %d B, want 32", byKey["zen4"].StoresBytes)
	}
	if !strings.Contains(tab.Render(), "Number of ports") {
		t.Error("Table II render incomplete")
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	tab, err := RunTable3()
	if err != nil {
		t.Fatal(err)
	}
	for arch, cells := range tab.Cells {
		for kind, c := range cells {
			if c.PaperThroughput == 0 {
				t.Fatalf("%s/%s missing paper reference", arch, kind)
			}
			// Throughput within 10% of the published value — except the
			// Zen 4 scalar divide, where the simulated hardware
			// deliberately beats the model (the paper's π outlier).
			tol := 0.10
			if arch == "zen4" && kind == IScalarDiv {
				if c.ThroughputElems < c.PaperThroughput {
					t.Errorf("zen4 scalar div: measured %.3f must beat the model's %.3f",
						c.ThroughputElems, c.PaperThroughput)
				}
				continue
			}
			if rel := math.Abs(c.ThroughputElems-c.PaperThroughput) / c.PaperThroughput; rel > tol {
				t.Errorf("%s/%s throughput %.3f vs paper %.3f (%.0f%% off)",
					arch, kind, c.ThroughputElems, c.PaperThroughput, 100*rel)
			}
			// Latency within 2 cycles (the non-pipelined divider chains
			// measure reciprocal throughput instead).
			if math.Abs(c.LatencyCy-c.PaperLatency) > 2 {
				t.Errorf("%s/%s latency %.1f vs paper %.0f", arch, kind, c.LatencyCy, c.PaperLatency)
			}
		}
	}
	if !strings.Contains(tab.Render(), "gather") {
		t.Error("Table III render incomplete")
	}
}

func TestFig2(t *testing.T) {
	f, err := RunFig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 4 {
		t.Fatalf("series = %d, want 4", len(f.Series))
	}
	var spr512, sprAVX, gcs, genoa *Fig2Series
	for i := range f.Series {
		s := &f.Series[i]
		switch s.Label {
		case "SPR AVX-512":
			spr512 = s
		case "SPR AVX/SSE":
			sprAVX = s
		case "GCS":
			gcs = s
		case "Genoa":
			genoa = s
		}
	}
	if math.Abs(spr512.At(52)-2.0) > 0.05 {
		t.Errorf("SPR AVX-512 @52 = %.2f, want 2.0", spr512.At(52))
	}
	if math.Abs(sprAVX.At(52)-3.0) > 0.05 {
		t.Errorf("SPR AVX/SSE @52 = %.2f, want 3.0", sprAVX.At(52))
	}
	if gcs.At(72) != 3.4 {
		t.Errorf("GCS @72 = %.2f, want 3.4", gcs.At(72))
	}
	if math.Abs(genoa.At(96)-3.1) > 0.05 {
		t.Errorf("Genoa @96 = %.2f, want 3.1", genoa.At(96))
	}
	if !strings.Contains(f.Render(), "1.7x") {
		t.Error("Fig 2 render must report the GCS/SPR advantage")
	}
}

func TestFig4(t *testing.T) {
	f, err := RunFig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 5 {
		t.Fatalf("series = %d, want 5", len(f.Series))
	}
	endpoints := map[string]struct{ want, tol float64 }{
		"GCS":             {1.0, 0.05},
		"SPR":             {1.75, 0.06},
		"SPR NT stores":   {1.10, 0.04},
		"Genoa":           {2.0, 0.05},
		"Genoa NT stores": {1.0, 0.03},
	}
	for _, s := range f.Series {
		e, ok := endpoints[s.Label]
		if !ok {
			t.Errorf("unexpected series %q", s.Label)
			continue
		}
		if got := s.AtFullSocket(); math.Abs(got-e.want) > e.tol {
			t.Errorf("%s full-socket ratio = %.3f, want %.2f", s.Label, got, e.want)
		}
	}
	if !strings.Contains(f.Render(), "write-allocate") {
		t.Error("Fig 4 render incomplete")
	}
}

func TestChipLabel(t *testing.T) {
	if chipLabel("neoversev2") != "GCS" || chipLabel("goldencove") != "SPR" ||
		chipLabel("zen4") != "Genoa" || chipLabel("x") != "x" {
		t.Error("chipLabel broken")
	}
}
