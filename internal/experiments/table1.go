// Package experiments contains one runner per table and figure of the
// paper's evaluation, regenerating each artifact on the simulation
// substrate (see DESIGN.md's experiment index E1..E6).
//
// Every runner submits its unit of work — a system, a (arch,
// instruction) cell, a test block — as jobs on the shared
// internal/pipeline pool, with analyzer and simulator results memoized
// process-wide. Results are collected in submission order, so rendered
// output is byte-identical at any parallelism (cmd/repro -j N).
package experiments

import (
	"fmt"
	"strings"

	"incore/internal/bw"
	"incore/internal/freq"
	"incore/internal/isa"
	"incore/internal/nodes"
	"incore/internal/pipeline"
	"incore/internal/uarch"
)

// Table1Row is one system column of Table I.
type Table1Row struct {
	Node *nodes.Node

	TheoreticalPeakTFs float64
	AchievablePeakTFs  float64
	SustainedVecGHz    float64

	TheoreticalBWGBs float64
	MeasuredBWGBs    float64
}

// Table1 reproduces Table I: node features plus measured bandwidth and
// achievable peak from the simulation substrate.
type Table1 struct {
	Rows []Table1Row
}

// RunTable1 measures bandwidth with the bw benchmark and derives
// achievable peak from the frequency governor's sustained all-core
// frequency for the widest vector ISA. One pipeline job per system; the
// bandwidth sweep inside each job fans out further on the same pool.
func RunTable1() (*Table1, error) {
	rows, err := pipeline.MapN(pipeline.Default(), len(nodes.Nodes), func(i int) (Table1Row, error) {
		n := &nodes.Nodes[i]
		row := Table1Row{Node: n}
		row.TheoreticalPeakTFs = n.TheoreticalPeakTFs()
		row.TheoreticalBWGBs = n.TheoreticalBandwidthGBs()

		g, err := freq.For(n.Key)
		if err != nil {
			return row, err
		}
		ext := widestExt(n.Key)
		f, err := g.Sustained(n.Cores, ext)
		if err != nil {
			return row, err
		}
		row.SustainedVecGHz = f
		row.AchievablePeakTFs = n.AchievablePeakTFs(f)

		bwRes, err := bw.MeasureNode(n.Key)
		if err != nil {
			return row, err
		}
		row.MeasuredBWGBs = bwRes.PeakGBs
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &Table1{Rows: rows}, nil
}

// widestExt resolves the widest vector extension from the machine
// model's node-level section (machine files name it explicitly).
func widestExt(key string) isa.Ext {
	if m, err := uarch.Get(key); err == nil && m.Node != nil && m.Node.Freq != nil {
		if ext, err := isa.ParseExt(m.Node.Freq.WidestVectorExt); err == nil {
			return ext
		}
	}
	return isa.ExtAVX512
}

// Render draws the table in the paper's layout (systems as columns).
func (t *Table1) Render() string {
	var sb strings.Builder
	head := []string{""}
	for _, r := range t.Rows {
		head = append(head, r.Node.Name)
	}
	rows := [][]string{
		{"Microarchitecture"}, {"Cores"}, {"Freq (max/base) [GHz]"},
		{"Theor. DP peak [TFlop/s]"}, {"Achiev. DP peak [TFlop/s]"},
		{"TDP [W]"}, {"Cache (L1/L2/L3)"}, {"Main memory"},
		{"ccNUMA domains"}, {"Max mem BW theor. [GB/s]"},
		{"Max mem BW measured [GB/s]"}, {"BW efficiency"},
	}
	for _, r := range t.Rows {
		n := r.Node
		rows[0] = append(rows[0], n.Uarch)
		rows[1] = append(rows[1], fmt.Sprintf("%d", n.Cores))
		rows[2] = append(rows[2], fmt.Sprintf("%.1f / %.2f", n.MaxFreqGHz, n.BaseFreqGHz))
		rows[3] = append(rows[3], fmt.Sprintf("%.2f", r.TheoreticalPeakTFs))
		rows[4] = append(rows[4], fmt.Sprintf("%.2f", r.AchievablePeakTFs))
		rows[5] = append(rows[5], fmt.Sprintf("%.0f", n.TDPWatts))
		rows[6] = append(rows[6], fmt.Sprintf("%dKB/%dMB/%dMB", n.L1Bytes>>10, n.L2Bytes>>20, n.L3Bytes>>20))
		rows[7] = append(rows[7], fmt.Sprintf("%dGB %s", n.MemGB, n.MemType))
		rows[8] = append(rows[8], fmt.Sprintf("%d", n.CCNUMADomains))
		rows[9] = append(rows[9], fmt.Sprintf("%.0f", r.TheoreticalBWGBs))
		rows[10] = append(rows[10], fmt.Sprintf("%.0f", r.MeasuredBWGBs))
		rows[11] = append(rows[11], fmt.Sprintf("%.0f%%", 100*r.MeasuredBWGBs/r.TheoreticalBWGBs))
	}
	sb.WriteString("Table I — node feature comparison (measured values from the simulation substrate)\n")
	writeTable(&sb, head, rows)
	return sb.String()
}

// writeTable renders rows with a header, padding columns.
func writeTable(sb *strings.Builder, head []string, rows [][]string) {
	width := make([]int, len(head))
	for i, h := range head {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(sb, "%-*s", width[i], c)
		}
		sb.WriteByte('\n')
	}
	line(head)
	total := 0
	for _, w := range width {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, r := range rows {
		line(r)
	}
}
