package experiments

import (
	"fmt"
	"strings"

	"incore/internal/core"
	"incore/internal/kernels"
	"incore/internal/pipeline"
	"incore/internal/sim"
	"incore/internal/stats"
	"incore/internal/uarch"
)

// Fig3Record is one validation data point: a generated kernel variant with
// its measurement and both predictions.
type Fig3Record struct {
	Block        string
	Arch         string
	Kernel       string
	Compiler     kernels.Compiler
	Opt          kernels.OptLevel
	MeasuredCy   float64
	OSACACy      float64
	MCACy        float64
	OSACARPE     float64
	MCARPE       float64
	ElemsPerIter int
	Bound        string
}

// Fig3 reproduces the model-validation study: 416 kernel variants,
// measured on the core simulator, predicted by the OSACA-style model and
// the LLVM-MCA-style baseline.
type Fig3 struct {
	Records []Fig3Record
	// Per-architecture and total summaries for both predictors.
	OSACASummary map[string]stats.Summary
	MCASummary   map[string]stats.Summary
	// Histograms per architecture and predictor.
	OSACAHist map[string]*stats.Histogram
	MCAHist   map[string]*stats.Histogram
	Unique    int
}

// RunFig3 executes the full study: one pipeline job per test block, each
// running the analyzer, the simulator, and the baseline through the
// shared memo cache (the suite's duplicate code bodies — 416 blocks, 290
// unique — collapse onto single computations). Records come back in suite
// order, so aggregation and rendering are independent of the worker
// count.
func RunFig3() (*Fig3, error) {
	blocks, err := kernels.FullSuite()
	if err != nil {
		return nil, err
	}
	f := &Fig3{
		OSACASummary: map[string]stats.Summary{},
		MCASummary:   map[string]stats.Summary{},
		OSACAHist:    map[string]*stats.Histogram{},
		MCAHist:      map[string]*stats.Histogram{},
		Unique:       kernels.UniqueBlocks(blocks),
	}
	an := core.New()
	f.Records, err = pipeline.Map(pipeline.Default(), blocks, func(tb kernels.TestBlock) (Fig3Record, error) {
		m, err := uarch.Get(tb.Config.Arch)
		if err != nil {
			return Fig3Record{}, err
		}
		res, err := pipeline.Analyze(an, tb.Block, m)
		if err != nil {
			return Fig3Record{}, fmt.Errorf("fig3: analyze %s: %w", tb.Block.Name, err)
		}
		meas, err := pipeline.Simulate(tb.Block, m, sim.DefaultConfig(m))
		if err != nil {
			return Fig3Record{}, fmt.Errorf("fig3: simulate %s: %w", tb.Block.Name, err)
		}
		mres, err := pipeline.MCAPredict(tb.Block, m)
		if err != nil {
			return Fig3Record{}, fmt.Errorf("fig3: mca %s: %w", tb.Block.Name, err)
		}
		rec := Fig3Record{
			Block: tb.Block.Name, Arch: tb.Config.Arch, Kernel: tb.Kernel.Name,
			Compiler: tb.Config.Compiler, Opt: tb.Config.Opt,
			MeasuredCy: meas.CyclesPerIter, OSACACy: res.Prediction,
			MCACy: mres.CyclesPerIter, ElemsPerIter: tb.ElemsPerIter,
			Bound: res.Bound,
		}
		rec.OSACARPE = stats.RPE(rec.MeasuredCy, rec.OSACACy)
		rec.MCARPE = stats.RPE(rec.MeasuredCy, rec.MCACy)
		return rec, nil
	})
	if err != nil {
		return nil, err
	}
	rpesO := map[string][]float64{}
	rpesM := map[string][]float64{}
	for _, rec := range f.Records {
		rpesO[rec.Arch] = append(rpesO[rec.Arch], rec.OSACARPE)
		rpesM[rec.Arch] = append(rpesM[rec.Arch], rec.MCARPE)
		rpesO["all"] = append(rpesO["all"], rec.OSACARPE)
		rpesM["all"] = append(rpesM["all"], rec.MCARPE)
	}
	for arch, v := range rpesO {
		f.OSACASummary[arch] = stats.Summarize(v)
		h := stats.NewHistogram()
		h.AddAll(v)
		f.OSACAHist[arch] = h
	}
	for arch, v := range rpesM {
		f.MCASummary[arch] = stats.Summarize(v)
		h := stats.NewHistogram()
		h.AddAll(v)
		f.MCAHist[arch] = h
	}
	return f, nil
}

// Outliers returns records with RPE below the threshold for the OSACA
// model (the paper's discussed over-predictions).
func (f *Fig3) Outliers(threshold float64) []Fig3Record {
	var out []Fig3Record
	for _, r := range f.Records {
		if r.OSACARPE < threshold {
			out = append(out, r)
		}
	}
	return out
}

// Render draws per-architecture histograms and the paper's aggregates.
func (f *Fig3) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 3 — relative prediction error of %d test blocks (%d unique) for OSACA-style model vs. LLVM-MCA-style baseline\n",
		len(f.Records), f.Unique)
	sb.WriteString("RPE = (measured - predicted)/measured; right of zero = prediction faster than measurement (desired for a lower bound)\n\n")
	for _, arch := range []string{"goldencove", "neoversev2", "zen4"} {
		fmt.Fprintf(&sb, "=== %s (%s) ===\n", chipLabel(arch), arch)
		fmt.Fprintf(&sb, "--- OSACA-style model: %s\n", f.OSACASummary[arch])
		sb.WriteString(f.OSACAHist[arch].Render(40))
		fmt.Fprintf(&sb, "--- LLVM-MCA-style baseline: %s\n", f.MCASummary[arch])
		sb.WriteString(f.MCAHist[arch].Render(40))
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "TOTAL OSACA: %s\n", f.OSACASummary["all"])
	fmt.Fprintf(&sb, "TOTAL MCA  : %s\n", f.MCASummary["all"])
	sb.WriteString("\nDiscussed over-predictions (RPE < -0.1):\n")
	for _, r := range f.Outliers(-0.1) {
		fmt.Fprintf(&sb, "  %-44s pred=%6.2f meas=%6.2f rpe=%+.2f [%s]\n",
			r.Block, r.OSACACy, r.MeasuredCy, r.OSACARPE, r.Bound)
	}
	return sb.String()
}
