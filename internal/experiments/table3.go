package experiments

import (
	"fmt"
	"strings"

	"incore/internal/ibench"
	"incore/internal/pipeline"
	"incore/internal/sim"
	"incore/internal/uarch"
)

// InstrKind aliases the ibench instruction classes (the rows of the
// paper's Table III).
type InstrKind = ibench.Kind

// Table III instruction classes, re-exported for the experiment API.
const (
	IGather    = ibench.Gather
	IVecAdd    = ibench.VecAdd
	IVecMul    = ibench.VecMul
	IVecFMA    = ibench.VecFMA
	IVecDiv    = ibench.VecDiv
	IScalarAdd = ibench.ScalarAdd
	IScalarMul = ibench.ScalarMul
	IScalarFMA = ibench.ScalarFMA
	IScalarDiv = ibench.ScalarDiv
)

// AllInstrKinds lists Table III's rows in order.
func AllInstrKinds() []InstrKind { return ibench.AllKinds() }

// paperTable3 holds the published values for comparison:
// [arch][kind] = {throughput, latency}. Throughput in DP elements/cy
// (gather in cache lines/cy).
var paperTable3 = map[string]map[InstrKind][2]float64{
	"neoversev2": {
		IGather: {0.25, 9}, IVecAdd: {8, 2}, IVecMul: {8, 3}, IVecFMA: {8, 4},
		IVecDiv: {0.4, 5}, IScalarAdd: {4, 2}, IScalarMul: {4, 3},
		IScalarFMA: {4, 4}, IScalarDiv: {0.4, 12},
	},
	"goldencove": {
		IGather: {1.0 / 3, 20}, IVecAdd: {16, 2}, IVecMul: {16, 4}, IVecFMA: {16, 4},
		IVecDiv: {0.5, 14}, IScalarAdd: {2, 2}, IScalarMul: {2, 4},
		IScalarFMA: {2, 5}, IScalarDiv: {0.25, 14},
	},
	"zen4": {
		IGather: {0.125, 13}, IVecAdd: {8, 3}, IVecMul: {8, 3}, IVecFMA: {8, 4},
		IVecDiv: {0.8, 13}, IScalarAdd: {2, 3}, IScalarMul: {2, 3},
		IScalarFMA: {2, 4}, IScalarDiv: {0.2, 13},
	},
}

// PaperTable3Value returns the published (throughput, latency) pair.
func PaperTable3Value(arch string, kind InstrKind) (tp, lat float64, ok bool) {
	m, ok := paperTable3[arch]
	if !ok {
		return 0, 0, false
	}
	v, ok := m[kind]
	return v[0], v[1], ok
}

// Table3Cell is one measured (arch, instruction) pair.
type Table3Cell struct {
	Arch string
	Kind InstrKind
	// ThroughputElems is DP elements per cycle (cache lines per cycle
	// for gathers).
	ThroughputElems float64
	// LatencyCy is the measured dependency-chain latency.
	LatencyCy float64
	// PaperThroughput / PaperLatency are the published values.
	PaperThroughput, PaperLatency float64
}

// Table3 reproduces Table III via throughput and latency microbenchmarks
// (package ibench) executed on the core simulator.
type Table3 struct {
	Cells map[string]map[InstrKind]Table3Cell
}

// RunTable3 executes all microbenchmarks: the (arch, instruction) cross
// product is flattened into one pipeline job per cell, each memoized on
// the shared cache.
func RunTable3() (*Table3, error) {
	archs := []string{"neoversev2", "goldencove", "zen4"}
	kinds := AllInstrKinds()
	cells, err := pipeline.MapN(pipeline.Default(), len(archs)*len(kinds), func(i int) (Table3Cell, error) {
		arch, kind := archs[i/len(kinds)], kinds[i%len(kinds)]
		m, err := uarch.Get(arch)
		if err != nil {
			return Table3Cell{}, err
		}
		r, err := pipeline.MeasureInstr(m, kind, sim.DefaultConfig(m))
		if err != nil {
			return Table3Cell{}, fmt.Errorf("table3: %s/%s: %w", arch, kind, err)
		}
		cell := Table3Cell{
			Arch: arch, Kind: kind,
			ThroughputElems: r.ThroughputElems, LatencyCy: r.LatencyCy,
		}
		cell.PaperThroughput, cell.PaperLatency, _ = PaperTable3Value(arch, kind)
		return cell, nil
	})
	if err != nil {
		return nil, err
	}
	t := &Table3{Cells: map[string]map[InstrKind]Table3Cell{}}
	for _, c := range cells {
		if t.Cells[c.Arch] == nil {
			t.Cells[c.Arch] = map[InstrKind]Table3Cell{}
		}
		t.Cells[c.Arch][c.Kind] = c
	}
	return t, nil
}

// Render draws Table III with paper values alongside.
func (t *Table3) Render() string {
	var sb strings.Builder
	sb.WriteString("Table III — DP instruction throughput and latency (measured on the core simulator; paper values in parentheses)\n")
	archs := []string{"neoversev2", "goldencove", "zen4"}
	head := []string{"Instruction"}
	for _, a := range archs {
		head = append(head, chipLabel(a)+" tp", chipLabel(a)+" lat")
	}
	var rows [][]string
	for _, kind := range AllInstrKinds() {
		row := []string{kind.String()}
		for _, a := range archs {
			c := t.Cells[a][kind]
			row = append(row,
				fmt.Sprintf("%.2f (%.2f)", c.ThroughputElems, c.PaperThroughput),
				fmt.Sprintf("%.0f (%.0f)", c.LatencyCy, c.PaperLatency))
		}
		rows = append(rows, row)
	}
	writeTable(&sb, head, rows)
	sb.WriteString("Throughput in DP elements/cy (gather: cache lines/cy); latency in cycles.\n")
	return sb.String()
}
