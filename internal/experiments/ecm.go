package experiments

import (
	"fmt"
	"strings"

	"incore/internal/core"
	"incore/internal/ecm"
	"incore/internal/kernels"
	"incore/internal/pipeline"
	"incore/internal/uarch"
)

// ECMRow is one (arch, kernel, level) node-level prediction.
type ECMRow struct {
	Arch   string
	Kernel string
	Level  ecm.MemLevel
	// TECM in cycles per cache line; NSat the saturation core count.
	TECM float64
	NSat int
	// CyPerElem at the kernel's element granularity.
	CyPerElem float64
}

// ECMStudy is experiment E7: the paper's future work — the in-core model
// feeding the Execution-Cache-Memory model for a set of streaming and
// stencil kernels on all three machines.
type ECMStudy struct {
	Rows []ECMRow
}

// ecmKernels are the kernels shown in the E7 report.
var ecmKernels = []string{"striad", "add", "j2d5", "j3d7", "sum"}

// RunECM builds ECM predictions for each kernel's best vectorized variant
// (first compiler, Ofast) across memory levels. The (arch, kernel) cross
// product is one pipeline job per pair; the in-core analyses hit the
// shared memo cache when fig3 or the node-perf study already ran them.
func RunECM() (*ECMStudy, error) {
	archs := []string{"neoversev2", "goldencove", "zen4"}
	an := core.New()
	perPair, err := pipeline.MapN(pipeline.Default(), len(archs)*len(ecmKernels), func(i int) ([]ECMRow, error) {
		arch, kname := archs[i/len(ecmKernels)], ecmKernels[i%len(ecmKernels)]
		m, err := uarch.Get(arch)
		if err != nil {
			return nil, err
		}
		em, err := ecm.For(arch)
		if err != nil {
			return nil, err
		}
		k, err := kernels.ByName(kname)
		if err != nil {
			return nil, err
		}
		cfg := kernels.Config{Arch: arch, Compiler: kernels.CompilersFor(arch)[0], Opt: kernels.Ofast}
		b, err := kernels.Generate(k, cfg)
		if err != nil {
			return nil, err
		}
		res, err := pipeline.Analyze(an, b, m)
		if err != nil {
			return nil, err
		}
		elems := kernels.ElemsPerIter(k, cfg)
		tOL, tnOL, err := ecm.InCoreInputs(res, elems)
		if err != nil {
			return nil, err
		}
		tr := ecm.TrafficForKernel(k, ecm.WAFactorFor(arch, true))
		var rows []ECMRow
		for _, level := range []ecm.MemLevel{ecm.L1, ecm.L2, ecm.L3, ecm.MEM} {
			r := em.Predict(tOL, tnOL, tr, level)
			rows = append(rows, ECMRow{
				Arch: arch, Kernel: kname, Level: level,
				TECM: r.TECM, NSat: r.NSat,
				CyPerElem: r.TECM / 8,
			})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	var study ECMStudy
	for _, rows := range perPair {
		study.Rows = append(study.Rows, rows...)
	}
	return &study, nil
}

// Render draws the per-level cycle predictions per kernel and machine.
func (s *ECMStudy) Render() string {
	var sb strings.Builder
	sb.WriteString("E7 (paper future work) — ECM node-level predictions [cy per cache line]\n")
	sb.WriteString("in-core inputs from the OSACA-style analyzer; memory term includes each\n")
	sb.WriteString("machine's write-allocate behaviour (GCS claims, SPR SpecI2M, Genoa full WA)\n\n")
	head := []string{"kernel", "level"}
	for _, a := range []string{"neoversev2", "goldencove", "zen4"} {
		head = append(head, chipLabel(a), "n_sat")
	}
	var rows [][]string
	for _, kname := range ecmKernels {
		for _, level := range []ecm.MemLevel{ecm.L1, ecm.L2, ecm.L3, ecm.MEM} {
			row := []string{kname, level.String()}
			for _, a := range []string{"neoversev2", "goldencove", "zen4"} {
				var cell, sat string
				for _, r := range s.Rows {
					if r.Arch == a && r.Kernel == kname && r.Level == level {
						cell = fmt.Sprintf("%.1f", r.TECM)
						if r.NSat > 0 {
							sat = fmt.Sprintf("%d", r.NSat)
						} else {
							sat = "-"
						}
					}
				}
				row = append(row, cell, sat)
			}
			rows = append(rows, row)
		}
	}
	writeTable(&sb, head, rows)
	return sb.String()
}
