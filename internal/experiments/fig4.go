package experiments

import (
	"fmt"
	"sort"
	"strings"

	"incore/internal/memsim"
	"incore/internal/nodes"
	"incore/internal/pipeline"
)

// Fig4Series is one traffic-ratio curve of the WA-evasion study.
type Fig4Series struct {
	Arch  string
	Label string
	NT    bool
	// Ratio maps active core count to traffic/stored ratio.
	Ratio map[int]float64
	// Counts is the sorted sweep.
	Counts []int
}

// Fig4 reproduces the write-allocate evasion study: the ratio of actual
// memory traffic to stored data volume for a store-only benchmark, as a
// function of active cores, with standard and non-temporal stores.
type Fig4 struct {
	Series []Fig4Series
}

// RunFig4 runs the five curves of the paper's Fig. 4.
func RunFig4() (*Fig4, error) {
	specs := []struct {
		arch, label string
		nt          bool
	}{
		{"neoversev2", "GCS", false},
		{"goldencove", "SPR", false},
		{"goldencove", "SPR NT stores", true},
		{"zen4", "Genoa", false},
		{"zen4", "Genoa NT stores", true},
	}
	series, err := pipeline.MapN(pipeline.Default(), len(specs), func(i int) (Fig4Series, error) {
		s := specs[i]
		n, err := nodes.Get(s.arch)
		if err != nil {
			return Fig4Series{}, err
		}
		counts := memsim.DefaultCounts(n.Cores)
		ratios, err := pipeline.WACurve(s.arch, s.nt, counts)
		if err != nil {
			return Fig4Series{}, fmt.Errorf("fig4: %s: %w", s.label, err)
		}
		sorted := append([]int(nil), counts...)
		sort.Ints(sorted)
		return Fig4Series{
			Arch: s.arch, Label: s.label, NT: s.nt, Ratio: ratios, Counts: sorted,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig4{Series: series}, nil
}

// AtFullSocket returns a series' ratio at its maximum core count.
func (s *Fig4Series) AtFullSocket() float64 {
	if len(s.Counts) == 0 {
		return 0
	}
	return s.Ratio[s.Counts[len(s.Counts)-1]]
}

// Render draws the curves as a table plus the paper's headline findings.
func (f *Fig4) Render() string {
	var sb strings.Builder
	sb.WriteString("Fig. 4 — ratio of actual memory traffic to stored data volume vs. active cores\n")
	sb.WriteString("(store-only benchmark; 1.0 = perfect write-allocate evasion, 2.0 = full WA traffic)\n")
	// Union of counts for the header.
	seen := map[int]bool{}
	var union []int
	for _, s := range f.Series {
		for _, c := range s.Counts {
			if !seen[c] {
				seen[c] = true
				union = append(union, c)
			}
		}
	}
	sort.Ints(union)
	head := []string{"series"}
	for _, c := range union {
		head = append(head, fmt.Sprintf("%d", c))
	}
	var rows [][]string
	for _, s := range f.Series {
		row := []string{s.Label}
		for _, c := range union {
			if v, ok := s.Ratio[c]; ok {
				row = append(row, fmt.Sprintf("%.2f", v))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	writeTable(&sb, head, rows)
	sb.WriteString("\nFindings (compare paper Sec. III):\n")
	for _, s := range f.Series {
		fmt.Fprintf(&sb, "  %-16s full socket ratio %.2f\n", s.Label, s.AtFullSocket())
	}
	return sb.String()
}
