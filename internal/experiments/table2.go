package experiments

import (
	"fmt"
	"strings"

	"incore/internal/pipeline"
	"incore/internal/uarch"
)

// Table2Row summarises one core's in-core features (Table II).
type Table2Row struct {
	Model       *uarch.Model
	Ports       int
	SIMDBytes   int
	IntUnits    int
	FPVecUnits  int
	LoadsDesc   string
	StoresDesc  string
	LoadsBytes  int // aggregate load bytes per cycle
	StoresBytes int
}

// Table2 reproduces Table II from the machine models themselves.
type Table2 struct {
	Rows []Table2Row
}

// RunTable2 derives the comparison from the registered machine models,
// one pipeline job per system.
func RunTable2() (*Table2, error) {
	rows, err := pipeline.Map(pipeline.Default(), []string{"neoversev2", "goldencove", "zen4"}, func(key string) (Table2Row, error) {
		m, err := uarch.Get(key)
		if err != nil {
			return Table2Row{}, err
		}
		row := Table2Row{
			Model:      m,
			Ports:      len(m.Ports),
			SIMDBytes:  m.VecWidth / 8,
			IntUnits:   m.IntUnits,
			FPVecUnits: m.FPVectorUnits,
		}
		nLoads := m.LoadPorts.Count()
		loadBits := m.LoadWidthBits
		if m.WideLoadBits > 0 && m.WideLoadPorts != 0 {
			nLoads = m.WideLoadPorts.Count()
			loadBits = m.WideLoadBits
		}
		row.LoadsDesc = fmt.Sprintf("%d x %d B", nLoads, loadBits/8)
		row.LoadsBytes = nLoads * loadBits / 8
		nStores := m.StoreDataPorts.Count()
		row.StoresDesc = fmt.Sprintf("%d x %d B", nStores, m.StoreWidthBits/8)
		row.StoresBytes = nStores * m.StoreWidthBits / 8
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &Table2{Rows: rows}, nil
}

// Render draws Table II.
func (t *Table2) Render() string {
	var sb strings.Builder
	head := []string{""}
	rows := [][]string{
		{"Number of ports"}, {"SIMD width"}, {"Int units"},
		{"FP vector units"}, {"Loads/cy"}, {"Stores/cy"},
	}
	for _, r := range t.Rows {
		head = append(head, fmt.Sprintf("%s (%s)", chipLabel(r.Model.Key), r.Model.Name))
		rows[0] = append(rows[0], fmt.Sprintf("%d", r.Ports))
		rows[1] = append(rows[1], fmt.Sprintf("%d B", r.SIMDBytes))
		rows[2] = append(rows[2], fmt.Sprintf("%d", r.IntUnits))
		rows[3] = append(rows[3], fmt.Sprintf("%d", r.FPVecUnits))
		rows[4] = append(rows[4], r.LoadsDesc)
		rows[5] = append(rows[5], r.StoresDesc)
	}
	sb.WriteString("Table II — in-core features and port models\n")
	writeTable(&sb, head, rows)
	return sb.String()
}

func chipLabel(key string) string {
	switch key {
	case "neoversev2":
		return "GCS"
	case "goldencove":
		return "SPR"
	case "zen4":
		return "Genoa"
	default:
		return key
	}
}
