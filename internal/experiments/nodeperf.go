package experiments

import (
	"fmt"
	"math"
	"strings"

	"incore/internal/core"
	"incore/internal/ecm"
	"incore/internal/freq"
	"incore/internal/isa"
	"incore/internal/kernels"
	"incore/internal/nodes"
	"incore/internal/pipeline"
	"incore/internal/uarch"
)

// NodePerfCell is one (kernel, arch) full-socket prediction.
type NodePerfCell struct {
	Arch   string
	Kernel string
	// BestVariant is the compiler/flag combination with the best
	// in-core prediction.
	BestVariant string
	// GUPs is predicted giga (lattice/stream) updates per second for a
	// memory-resident working set at full socket.
	GUPs float64
	// CoreBoundGUPs ignores the memory system (L1-resident).
	CoreBoundGUPs float64
	// MemBound reports whether the socket saturates on bandwidth.
	MemBound bool
}

// NodePerf is the capstone comparison the paper's introduction motivates:
// which machine wins for which kernel once in-core capability, sustained
// frequency, core count, memory bandwidth, and write-allocate behaviour
// are all accounted for.
type NodePerf struct {
	Cells map[string]map[string]NodePerfCell // [kernel][arch]
}

// RunNodePerf predicts full-socket performance for every kernel on every
// machine: the best compiled variant's in-core time feeds the ECM model
// (memory-resident working set), scaled by the sustained frequency for
// the variant's ISA class.
func RunNodePerf() (*NodePerf, error) {
	archs := []string{"neoversev2", "goldencove", "zen4"}
	an := core.New()
	cells, err := pipeline.MapN(pipeline.Default(), len(kernels.Kernels)*len(archs), func(i int) (NodePerfCell, error) {
		k := &kernels.Kernels[i/len(archs)]
		arch := archs[i%len(archs)]
		m, err := uarch.Get(arch)
		if err != nil {
			return NodePerfCell{}, err
		}
		n, err := nodes.Get(arch)
		if err != nil {
			return NodePerfCell{}, err
		}
		g, err := freq.For(arch)
		if err != nil {
			return NodePerfCell{}, err
		}
		em, err := ecm.For(arch)
		if err != nil {
			return NodePerfCell{}, err
		}

		// Pick the best variant by in-core cycles per element.
		best := NodePerfCell{Arch: arch, Kernel: k.Name}
		bestCyPerElem := math.Inf(1)
		var bestRes *core.Result
		var bestElems int
		var bestExt isa.Ext
		for _, comp := range kernels.CompilersFor(arch) {
			cfg := kernels.Config{Arch: arch, Compiler: comp, Opt: kernels.Ofast}
			b, err := kernels.Generate(k, cfg)
			if err != nil {
				return NodePerfCell{}, err
			}
			res, err := pipeline.Analyze(an, b, m)
			if err != nil {
				return NodePerfCell{}, err
			}
			elems := kernels.ElemsPerIter(k, cfg)
			cpe := res.Prediction / float64(elems)
			if cpe < bestCyPerElem {
				bestCyPerElem = cpe
				best.BestVariant = string(comp) + "-Ofast"
				bestRes = res
				bestElems = elems
				bestExt = dominantExt(b)
			}
		}

		f, err := g.Sustained(n.Cores, bestExt)
		if err != nil {
			// ISA class without a calibrated activity factor (e.g.
			// scalar-only kernels on x86): fall back to scalar.
			f, err = g.Sustained(n.Cores, isa.ExtScalar)
			if err != nil {
				return NodePerfCell{}, err
			}
		}

		// Core-bound (L1) performance.
		best.CoreBoundGUPs = float64(n.Cores) / bestCyPerElem * f

		// Memory-resident ECM prediction.
		tOL, tnOL, err := ecm.InCoreInputs(bestRes, bestElems)
		if err != nil {
			return NodePerfCell{}, err
		}
		tr := ecm.TrafficForKernel(k, ecm.WAFactorFor(arch, true))
		r := em.Predict(tOL, tnOL, tr, ecm.MEM)
		perfCLperCy := float64(n.Cores) / r.TECM
		if r.TL3Mem > 0 {
			if ceiling := 1.0 / r.TL3Mem; perfCLperCy > ceiling {
				perfCLperCy = ceiling
				best.MemBound = true
			}
		}
		best.GUPs = perfCLperCy * 8 * f // 8 elements per cache line
		return best, nil
	})
	if err != nil {
		return nil, err
	}
	np := &NodePerf{Cells: map[string]map[string]NodePerfCell{}}
	for _, c := range cells {
		if np.Cells[c.Kernel] == nil {
			np.Cells[c.Kernel] = map[string]NodePerfCell{}
		}
		np.Cells[c.Kernel][c.Arch] = c
	}
	return np, nil
}

// dominantExt returns the widest ISA class used by a block (for the
// frequency governor).
func dominantExt(b *isa.Block) isa.Ext {
	best := isa.ExtScalar
	rank := map[isa.Ext]int{
		isa.ExtScalar: 0, isa.ExtSSE: 1, isa.ExtNEON: 1, isa.ExtSVE: 2,
		isa.ExtAVX: 2, isa.ExtAVX512: 3,
	}
	for i := range b.Instrs {
		if rank[b.Instrs[i].Ext] > rank[best] {
			best = b.Instrs[i].Ext
		}
	}
	return best
}

// Winner returns the fastest architecture for a kernel (memory-resident).
func (np *NodePerf) Winner(kernel string) (string, float64) {
	bestArch, bestPerf := "", 0.0
	for arch, c := range np.Cells[kernel] {
		if c.GUPs > bestPerf {
			bestArch, bestPerf = arch, c.GUPs
		}
	}
	return bestArch, bestPerf
}

// Render draws the node-level comparison.
func (np *NodePerf) Render() string {
	var sb strings.Builder
	sb.WriteString("Node-level kernel performance prediction (full socket, memory-resident)\n")
	sb.WriteString("in-core model -> ECM -> sustained frequency; G updates/s per kernel\n\n")
	head := []string{"kernel"}
	for _, a := range []string{"neoversev2", "goldencove", "zen4"} {
		head = append(head, chipLabel(a))
	}
	head = append(head, "winner", "bound")
	var rows [][]string
	for ki := range kernels.Kernels {
		k := kernels.Kernels[ki].Name
		row := []string{k}
		for _, a := range []string{"neoversev2", "goldencove", "zen4"} {
			row = append(row, fmt.Sprintf("%.1f", np.Cells[k][a].GUPs))
		}
		w, _ := np.Winner(k)
		bound := "core"
		if np.Cells[k][w].MemBound {
			bound = "mem"
		}
		rows = append(rows, append(row, chipLabel(w), bound))
	}
	writeTable(&sb, head, rows)
	sb.WriteString("\nCore-bound (L1-resident) comparison:\n")
	head2 := []string{"kernel"}
	for _, a := range []string{"neoversev2", "goldencove", "zen4"} {
		head2 = append(head2, chipLabel(a))
	}
	var rows2 [][]string
	for ki := range kernels.Kernels {
		k := kernels.Kernels[ki].Name
		row := []string{k}
		for _, a := range []string{"neoversev2", "goldencove", "zen4"} {
			row = append(row, fmt.Sprintf("%.1f", np.Cells[k][a].CoreBoundGUPs))
		}
		rows2 = append(rows2, row)
	}
	writeTable(&sb, head2, rows2)
	return sb.String()
}
