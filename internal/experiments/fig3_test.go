package experiments

import (
	"strings"
	"testing"
)

// TestFig3Study runs the full 416-block validation once and checks the
// paper's aggregate claims. It is the heaviest test in the suite.
func TestFig3Study(t *testing.T) {
	if testing.Short() {
		t.Skip("full validation study skipped in -short mode")
	}
	f, err := RunFig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Records) != 416 {
		t.Fatalf("records = %d, want 416", len(f.Records))
	}
	if f.Unique < 180 {
		t.Errorf("unique blocks = %d, want a few hundred", f.Unique)
	}

	all := f.OSACASummary["all"]
	// Paper: 96% of tests under-predicted (right of zero).
	if all.RightFrac < 0.90 {
		t.Errorf("OSACA right-of-zero fraction = %.2f, want >= 0.90 (paper: 0.96)", all.RightFrac)
	}
	// Paper: at most one prediction off by more than 2x.
	if all.FarLeft > 2 {
		t.Errorf("OSACA far-left count = %d, want <= 2 (paper: 1)", all.FarLeft)
	}
	// Paper: 37% within +10%, 44% within +20% — ours is tighter, but both
	// must at least reach the paper's level.
	if all.Within10 < 0.3 {
		t.Errorf("OSACA within +10%% = %.2f, want >= 0.3", all.Within10)
	}

	mcaAll := f.MCASummary["all"]
	// Paper: LLVM-MCA predicts ~75% of kernels slower than measured.
	if mcaAll.RightFrac > 0.40 {
		t.Errorf("MCA right fraction = %.2f, want <= 0.40 (majority left)", mcaAll.RightFrac)
	}

	// Per-architecture ordering of the baseline's global error
	// (paper: V2 52%% worst, Zen 4 16%% best).
	v2 := f.MCASummary["neoversev2"].MeanAbs
	zen := f.MCASummary["zen4"].MeanAbs
	glc := f.MCASummary["goldencove"].MeanAbs
	if !(v2 > glc && glc > zen) {
		t.Errorf("MCA error ordering want V2 > GLC > Zen4, got %.2f / %.2f / %.2f", v2, glc, zen)
	}
	// OSACA beats MCA globally on every architecture.
	for _, arch := range []string{"neoversev2", "goldencove", "zen4"} {
		if f.OSACASummary[arch].MeanAbs >= f.MCASummary[arch].MeanAbs {
			t.Errorf("%s: OSACA (%.2f) must beat MCA (%.2f)", arch,
				f.OSACASummary[arch].MeanAbs, f.MCASummary[arch].MeanAbs)
		}
	}

	// The paper's discussed outliers — and only those families — sit
	// left of -0.1.
	for _, r := range f.Outliers(-0.1) {
		gs := r.Kernel == "gs2d5" && r.Arch == "neoversev2"
		pi := r.Kernel == "pi" && r.Arch == "zen4"
		if !gs && !pi {
			t.Errorf("unexpected outlier %s (rpe %.2f)", r.Block, r.OSACARPE)
		}
	}
	var sawGS, sawPi bool
	for _, r := range f.Outliers(-0.1) {
		if r.Kernel == "gs2d5" {
			sawGS = true
		}
		if r.Kernel == "pi" {
			sawPi = true
		}
	}
	if !sawGS || !sawPi {
		t.Error("both paper-discussed outlier families must appear")
	}

	out := f.Render()
	for _, want := range []string{"416", "OSACA", "LLVM-MCA", "zero"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig 3 render missing %q", want)
		}
	}
}
