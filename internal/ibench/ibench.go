// Package ibench generates and runs instruction micro-benchmarks — the
// reproduction's counterpart to the ibench / OoO instruction benchmarking
// tools the paper uses to populate its port models ("we write
// microbenchmarks ... for every interesting instruction to obtain its
// throughput, latency, and port occupation").
//
// Two benchmark shapes per instruction class:
//
//   - throughput: 16 independent instances per loop iteration (enough
//     parallel chains to exceed ports x latency even for accumulating
//     FMAs), measured as instructions per cycle;
//   - latency: an 8-link serial dependency chain, measured as cycles per
//     link. FMA chains route through the multiplicand, not the
//     accumulator, to avoid accumulator-forwarding shortcuts.
//
// Benchmarks run on the core simulator (package sim), standing in for
// hardware measurement.
package ibench

import (
	"fmt"
	"strings"

	"incore/internal/isa"
	"incore/internal/sim"
	"incore/internal/uarch"
)

// Kind enumerates the benchmarkable instruction classes.
type Kind int

// Instruction classes (the rows of the paper's Table III).
const (
	Gather Kind = iota
	VecAdd
	VecMul
	VecFMA
	VecDiv
	ScalarAdd
	ScalarMul
	ScalarFMA
	ScalarDiv
)

// String names the class as in the paper.
func (k Kind) String() string {
	switch k {
	case Gather:
		return "gather [CL/cy]"
	case VecAdd:
		return "VEC ADD"
	case VecMul:
		return "VEC MUL"
	case VecFMA:
		return "VEC FMA"
	case VecDiv:
		return "VEC FP DIV"
	case ScalarAdd:
		return "Scalar ADD"
	case ScalarMul:
		return "Scalar MUL"
	case ScalarFMA:
		return "Scalar FMA"
	case ScalarDiv:
		return "Scalar DIV"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind resolves a class name ("vecfma", "scalardiv", "gather").
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.ReplaceAll(s, "-", "")) {
	case "gather":
		return Gather, nil
	case "vecadd":
		return VecAdd, nil
	case "vecmul":
		return VecMul, nil
	case "vecfma":
		return VecFMA, nil
	case "vecdiv", "vecfpdiv":
		return VecDiv, nil
	case "scalaradd":
		return ScalarAdd, nil
	case "scalarmul":
		return ScalarMul, nil
	case "scalarfma":
		return ScalarFMA, nil
	case "scalardiv":
		return ScalarDiv, nil
	default:
		return 0, fmt.Errorf("ibench: unknown instruction class %q", s)
	}
}

// AllKinds lists the classes in Table III order.
func AllKinds() []Kind {
	return []Kind{Gather, VecAdd, VecMul, VecFMA, VecDiv,
		ScalarAdd, ScalarMul, ScalarFMA, ScalarDiv}
}

// Benchmark shape parameters.
const (
	// TputInstances is the number of parallel chains in throughput
	// benchmarks.
	TputInstances = 16
	// LatInstances is the serial chain length in latency benchmarks.
	LatInstances = 8
)

// Lanes returns the DP lanes per instruction at the model's native width
// (1 for scalar classes).
func Lanes(m *uarch.Model, kind Kind) int {
	switch kind {
	case ScalarAdd, ScalarMul, ScalarFMA, ScalarDiv:
		return 1
	default:
		return m.VecWidth / 64
	}
}

// Build emits the benchmark loop body for a class; latency selects the
// serial-chain shape.
func Build(m *uarch.Model, kind Kind, latency bool) (*isa.Block, error) {
	var text string
	if m.Dialect == isa.DialectAArch64 {
		text = buildAArch64(kind, latency)
	} else {
		text = buildX86(m, kind, latency)
	}
	name := fmt.Sprintf("ibench-%s-%s-lat=%v", m.Key, kind, latency)
	return isa.ParseBlock(name, m.Key, m.Dialect, text)
}

// Result is one instruction class's measurement.
type Result struct {
	Kind Kind
	// ThroughputInstr is instructions per cycle; ThroughputElems scales
	// by lanes (cache lines per cycle for gathers).
	ThroughputInstr, ThroughputElems float64
	// LatencyCy is the dependency-chain latency.
	LatencyCy float64
}

// Measure runs both benchmark shapes on the core simulator.
func Measure(m *uarch.Model, kind Kind, cfg sim.Config) (*Result, error) {
	r := &Result{Kind: kind}
	lanes := Lanes(m, kind)

	tb, err := Build(m, kind, false)
	if err != nil {
		return nil, err
	}
	tr, err := sim.Run(tb, m, cfg)
	if err != nil {
		return nil, err
	}
	r.ThroughputInstr = float64(TputInstances) / tr.CyclesPerIter
	if kind == Gather {
		r.ThroughputElems = r.ThroughputInstr * float64(lanes) * 8 / 64 // CL/cy
	} else {
		r.ThroughputElems = r.ThroughputInstr * float64(lanes)
	}

	lb, err := Build(m, kind, true)
	if err != nil {
		return nil, err
	}
	lr, err := sim.Run(lb, m, cfg)
	if err != nil {
		return nil, err
	}
	r.LatencyCy = lr.CyclesPerIter / float64(LatInstances)
	return r, nil
}

// ---------------------------------------------------------------------------
// x86 builder

func buildX86(m *uarch.Model, kind Kind, latency bool) string {
	var sb strings.Builder
	sb.WriteString(".L0:\n")
	pfx := "zmm"
	if m.VecWidth == 256 {
		pfx = "ymm"
	}
	r := func(i int) string { return fmt.Sprintf("%%%s%d", pfx, i) }
	x := func(i int) string { return fmt.Sprintf("%%xmm%d", i) }
	n := TputInstances
	if latency {
		n = LatInstances
	}
	for i := 0; i < n; i++ {
		dst := 16 + i%16 // distinct destinations, clear of the sources
		switch kind {
		case Gather:
			if latency {
				if m.VecWidth == 512 {
					fmt.Fprintf(&sb, "\tvgatherqpd (%%rsi,%s,8), %s\n", r(0), r(0))
				} else {
					fmt.Fprintf(&sb, "\tvgatherqpd %s, (%%rsi,%s,8), %s\n", r(9), r(0), r(0))
				}
			} else {
				if m.VecWidth == 512 {
					fmt.Fprintf(&sb, "\tvgatherqpd (%%rsi,%s,8), %s\n", r(8), r(dst))
				} else {
					fmt.Fprintf(&sb, "\tvgatherqpd %s, (%%rsi,%s,8), %s\n", r(9), r(8), r(dst))
				}
			}
		case VecAdd:
			emit3(&sb, "vaddpd", r, dst, latency)
		case VecMul:
			emit3(&sb, "vmulpd", r, dst, latency)
		case VecFMA:
			if latency {
				fmt.Fprintf(&sb, "\tvfmadd213pd %s, %s, %s\n", r(8), r(9), r(0))
			} else {
				fmt.Fprintf(&sb, "\tvfmadd231pd %s, %s, %s\n", r(8), r(9), r(dst))
			}
		case VecDiv:
			emit3(&sb, "vdivpd", r, dst, latency)
		case ScalarAdd:
			emit3(&sb, "vaddsd", x, dst, latency)
		case ScalarMul:
			emit3(&sb, "vmulsd", x, dst, latency)
		case ScalarFMA:
			if latency {
				fmt.Fprintf(&sb, "\tvfmadd213sd %s, %s, %s\n", x(8), x(9), x(0))
			} else {
				fmt.Fprintf(&sb, "\tvfmadd231sd %s, %s, %s\n", x(8), x(9), x(dst))
			}
		case ScalarDiv:
			emit3(&sb, "vdivsd", x, dst, latency)
		}
	}
	sb.WriteString("\tdecq %rcx\n\tjne .L0\n")
	return sb.String()
}

// emit3 writes a three-operand AT&T op, either as an independent instance
// (distinct destination) or as a serial chain through register 0.
func emit3(sb *strings.Builder, op string, r func(int) string, dst int, latency bool) {
	if latency {
		fmt.Fprintf(sb, "\t%s %s, %s, %s\n", op, r(8), r(0), r(0))
		return
	}
	fmt.Fprintf(sb, "\t%s %s, %s, %s\n", op, r(8), r(9), r(dst))
}

// ---------------------------------------------------------------------------
// AArch64 builder

func buildAArch64(kind Kind, latency bool) string {
	var sb strings.Builder
	sb.WriteString(".L0:\n")
	v := func(i int) string { return fmt.Sprintf("v%d.2d", i) }
	d := func(i int) string { return fmt.Sprintf("d%d", i) }
	n := TputInstances
	if latency {
		n = LatInstances
	}
	for i := 0; i < n; i++ {
		dst := 16 + i%16
		switch kind {
		case Gather:
			if latency {
				fmt.Fprintf(&sb, "\tld1d { z0.d }, p0/z, [x1, z0.d]\n")
			} else {
				fmt.Fprintf(&sb, "\tld1d { z%d.d }, p0/z, [x1, z8.d]\n", dst)
			}
		case VecAdd:
			emitA3(&sb, "fadd", v, dst, latency)
		case VecMul:
			emitA3(&sb, "fmul", v, dst, latency)
		case VecFMA:
			if latency {
				// Chain through the multiplicand (vn), not the
				// accumulator, which Neoverse V2 forwards early.
				fmt.Fprintf(&sb, "\tfmla %s, %s, %s\n", v((i+1)%8), v(i%8), v(8))
			} else {
				fmt.Fprintf(&sb, "\tfmla %s, %s, %s\n", v(dst), v(8), v(9))
			}
		case VecDiv:
			emitA3(&sb, "fdiv", v, dst, latency)
		case ScalarAdd:
			emitA3(&sb, "fadd", d, dst, latency)
		case ScalarMul:
			emitA3(&sb, "fmul", d, dst, latency)
		case ScalarFMA:
			if latency {
				fmt.Fprintf(&sb, "\tfmadd %s, %s, %s, %s\n", d(0), d(0), d(8), d(9))
			} else {
				fmt.Fprintf(&sb, "\tfmadd %s, %s, %s, %s\n", d(dst), d(8), d(9), d(10+i%4))
			}
		case ScalarDiv:
			emitA3(&sb, "fdiv", d, dst, latency)
		}
	}
	sb.WriteString("\tsubs x4, x4, #1\n\tb.ne .L0\n")
	return sb.String()
}

func emitA3(sb *strings.Builder, op string, r func(int) string, dst int, latency bool) {
	if latency {
		fmt.Fprintf(sb, "\t%s %s, %s, %s\n", op, r(0), r(0), r(8))
		return
	}
	fmt.Fprintf(sb, "\t%s %s, %s, %s\n", op, r(dst), r(8), r(9))
}
