package ibench

import (
	"strings"
	"testing"

	"incore/internal/sim"
	"incore/internal/uarch"
)

func TestParseKind(t *testing.T) {
	cases := map[string]Kind{
		"gather": Gather, "vecadd": VecAdd, "VecFMA": VecFMA,
		"vec-div": VecDiv, "scalardiv": ScalarDiv, "ScalarAdd": ScalarAdd,
	}
	for s, want := range cases {
		got, err := ParseKind(s)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("unknown class must error")
	}
}

func TestAllKindsHaveNames(t *testing.T) {
	if len(AllKinds()) != 9 {
		t.Fatalf("want 9 classes, got %d", len(AllKinds()))
	}
	for _, k := range AllKinds() {
		if strings.Contains(k.String(), "Kind(") {
			t.Errorf("class %d has no name", k)
		}
	}
}

func TestBuildAllCombinations(t *testing.T) {
	for _, m := range uarch.All() {
		for _, k := range AllKinds() {
			for _, lat := range []bool{false, true} {
				b, err := Build(m, k, lat)
				if err != nil {
					t.Fatalf("%s/%s lat=%v: %v", m.Key, k, lat, err)
				}
				want := TputInstances
				if lat {
					want = LatInstances
				}
				// loop body = instances + 2 loop-control instructions.
				if b.Len() != want+2 {
					t.Errorf("%s/%s lat=%v: %d instructions, want %d",
						m.Key, k, lat, b.Len(), want+2)
				}
				// Every instruction must resolve against the model.
				for i := range b.Instrs {
					if _, err := m.Lookup(&b.Instrs[i]); err != nil {
						t.Errorf("%s: %v", m.Key, err)
					}
				}
			}
		}
	}
}

func TestLanes(t *testing.T) {
	glc := uarch.MustGet("goldencove")
	if Lanes(glc, VecAdd) != 8 || Lanes(glc, ScalarAdd) != 1 {
		t.Error("GLC lanes wrong")
	}
	v2 := uarch.MustGet("neoversev2")
	if Lanes(v2, VecFMA) != 2 {
		t.Error("V2 lanes wrong")
	}
}

func TestMeasureLatencyVsThroughputConsistency(t *testing.T) {
	// For every class: measured chain latency >= 1/ipc (a dependent
	// chain can never be faster than the pipelined rate).
	for _, m := range uarch.All() {
		cfg := sim.DefaultConfig(m)
		for _, k := range AllKinds() {
			r, err := Measure(m, k, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", m.Key, k, err)
			}
			if r.ThroughputInstr <= 0 || r.LatencyCy <= 0 {
				t.Errorf("%s/%s: non-positive measurement %+v", m.Key, k, r)
			}
			if r.LatencyCy+1e-9 < 1/r.ThroughputInstr {
				t.Errorf("%s/%s: latency %.2f below reciprocal throughput %.2f",
					m.Key, k, r.LatencyCy, 1/r.ThroughputInstr)
			}
		}
	}
}
