// Command benchjson measures the simulator/analyzer hot paths with
// testing.Benchmark and emits machine-readable JSON, so perf numbers can
// be committed (BENCH_sim.json) and regressions gated in CI.
//
// Usage:
//
//	benchjson                      # print current numbers as JSON
//	benchjson -check BENCH_sim.json  # fail if allocs/op exceeds a budget
//	benchjson -update BENCH_sim.json # rewrite the file's "current" block
//
// The CI gate compares allocations per operation, not nanoseconds:
// allocation counts are deterministic on any machine, while wall-clock on
// shared single-CPU CI runners is noise (see EXPERIMENTS.md). ns/op and
// B/op are recorded for humans reading the file.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"testing"

	"incore/internal/core"
	"incore/internal/isa"
	"incore/internal/kernels"
	"incore/internal/sim"
	"incore/internal/uarch"
)

// Metrics is one benchmark's measurement.
type Metrics struct {
	NsPerOp     int64 `json:"ns_op"`
	BytesPerOp  int64 `json:"b_op"`
	AllocsPerOp int64 `json:"allocs_op"`
}

// File is the schema of BENCH_sim.json.
type File struct {
	Schema int    `json:"schema"`
	Note   string `json:"note"`
	// BaselinePreRefactor preserves the numbers measured on the
	// map-based O(iterations) simulator before the compiled/ring-buffer
	// engine landed, so the delta stays on the record.
	BaselinePreRefactor map[string]Metrics `json:"baseline_pre_refactor"`
	// Current is the last committed measurement of this tree.
	Current map[string]Metrics `json:"current"`
	// AllocBudget is the CI gate: allocs/op above the budget fails.
	// Budgets carry headroom over Current so pool warmup and Go-version
	// drift don't flake, while a hot-path regression still trips.
	AllocBudget map[string]int64 `json:"alloc_budget"`
}

func genBlock(name, arch string, c kernels.Compiler, o kernels.OptLevel) *isa.Block {
	k, err := kernels.ByName(name)
	if err != nil {
		panic(err)
	}
	b, err := kernels.Generate(k, kernels.Config{Arch: arch, Compiler: c, Opt: o})
	if err != nil {
		panic(err)
	}
	return b
}

// suite returns the benchmark set, keyed by stable names. It mirrors the
// repo-level Benchmark{Simulator,Analyzer}SingleBlock benches and adds an
// AArch64 block and the Zen 4 divide kernel (whose non-dyadic early-exit
// occupancies keep the simulator on the full-length path). The analyzer
// front-end is benchmarked on all three models so the alloc-budget gate
// covers the x86 and AArch64 lookup/effects paths alike.
func suite() map[string]func(b *testing.B) {
	striadGLC := genBlock("striad", "goldencove", kernels.GCC, kernels.O3)
	j3d27V2 := genBlock("j3d27", "neoversev2", kernels.GCC, kernels.O3)
	piZen4 := genBlock("pi", "zen4", kernels.GCC, kernels.O3)

	simBench := func(blk *isa.Block, arch string) func(b *testing.B) {
		m := uarch.MustGet(arch)
		cfg := sim.DefaultConfig(m)
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(blk, m, cfg); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	an := core.New()
	analyzeBench := func(blk *isa.Block, arch string) func(b *testing.B) {
		m := uarch.MustGet(arch)
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := an.Analyze(blk, m); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	return map[string]func(b *testing.B){
		"SimRun/goldencove/striad":  simBench(striadGLC, "goldencove"),
		"SimRun/neoversev2/j3d27":   simBench(j3d27V2, "neoversev2"),
		"SimRun/zen4/pi":            simBench(piZen4, "zen4"),
		"Analyze/goldencove/striad": analyzeBench(striadGLC, "goldencove"),
		"Analyze/neoversev2/j3d27":  analyzeBench(j3d27V2, "neoversev2"),
		"Analyze/zen4/pi":           analyzeBench(piZen4, "zen4"),
	}
}

func measure() map[string]Metrics {
	out := map[string]Metrics{}
	names := make([]string, 0)
	benches := suite()
	for n := range benches {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r := testing.Benchmark(benches[n])
		out[n] = Metrics{
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		fmt.Fprintf(os.Stderr, "benchjson: %-26s %10d ns/op %8d B/op %6d allocs/op\n",
			n, r.NsPerOp(), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}
	return out
}

func readFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

func main() {
	check := flag.String("check", "", "compare allocs/op against the alloc_budget in this BENCH file; non-zero exit on regression")
	update := flag.String("update", "", "rewrite the given BENCH file's current block with fresh measurements")
	flag.Parse()

	if *check != "" && *update != "" {
		fmt.Fprintln(os.Stderr, "benchjson: -check and -update are mutually exclusive")
		os.Exit(2)
	}
	// Validate the target file before spending seconds on measurement.
	var f *File
	if path := *check + *update; path != "" {
		var err error
		if f, err = readFile(path); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}

	cur := measure()

	switch {
	case *check != "":
		failed := false
		names := make([]string, 0, len(f.AllocBudget))
		for n := range f.AllocBudget {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			budget := f.AllocBudget[n]
			m, ok := cur[n]
			if !ok {
				fmt.Fprintf(os.Stderr, "benchjson: FAIL %s: budgeted benchmark no longer measured\n", n)
				failed = true
				continue
			}
			if m.AllocsPerOp > budget {
				fmt.Fprintf(os.Stderr, "benchjson: FAIL %s: %d allocs/op exceeds budget %d\n", n, m.AllocsPerOp, budget)
				failed = true
			} else {
				fmt.Fprintf(os.Stderr, "benchjson: ok   %s: %d allocs/op within budget %d\n", n, m.AllocsPerOp, budget)
			}
		}
		if failed {
			os.Exit(1)
		}
	case *update != "":
		f.Current = cur
		data, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*update, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	default:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cur); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
}
