// Command benchjson measures the simulator/analyzer hot paths with
// testing.Benchmark and emits machine-readable JSON, so perf numbers can
// be committed (BENCH_sim.json) and regressions gated in CI.
//
// Usage:
//
//	benchjson                      # print current numbers as JSON
//	benchjson -check BENCH_sim.json  # fail if allocs/op exceeds a budget
//	benchjson -update BENCH_sim.json # rewrite the file's "current" block
//
// The CI gate compares allocations per operation, not nanoseconds:
// allocation counts are deterministic on any machine, while wall-clock on
// shared single-CPU CI runners is noise (see EXPERIMENTS.md). ns/op and
// B/op are recorded for humans reading the file.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"testing"

	"incore/internal/core"
	"incore/internal/isa"
	"incore/internal/kernels"
	"incore/internal/pipeline"
	"incore/internal/serve"
	"incore/internal/sim"
	"incore/internal/sweep"
	"incore/internal/uarch"
)

// Metrics is one benchmark's measurement.
type Metrics struct {
	NsPerOp     int64 `json:"ns_op"`
	BytesPerOp  int64 `json:"b_op"`
	AllocsPerOp int64 `json:"allocs_op"`
}

// File is the schema of BENCH_sim.json.
type File struct {
	Schema int    `json:"schema"`
	Note   string `json:"note"`
	// BaselinePreRefactor preserves the numbers measured on the
	// map-based O(iterations) simulator before the compiled/ring-buffer
	// engine landed, so the delta stays on the record.
	BaselinePreRefactor map[string]Metrics `json:"baseline_pre_refactor"`
	// Current is the last committed measurement of this tree.
	Current map[string]Metrics `json:"current"`
	// AllocBudget is the CI gate: allocs/op above the budget fails.
	// Budgets carry headroom over Current so pool warmup and Go-version
	// drift don't flake, while a hot-path regression still trips.
	AllocBudget map[string]int64 `json:"alloc_budget"`
}

func genBlock(name, arch string, c kernels.Compiler, o kernels.OptLevel) *isa.Block {
	k, err := kernels.ByName(name)
	if err != nil {
		panic(err)
	}
	b, err := kernels.Generate(k, kernels.Config{Arch: arch, Compiler: c, Opt: o})
	if err != nil {
		panic(err)
	}
	return b
}

// suite returns the benchmark set, keyed by stable names. It mirrors the
// repo-level Benchmark{Simulator,Analyzer}SingleBlock benches and adds an
// AArch64 block and the Zen 4 divide kernel (whose non-dyadic early-exit
// occupancies keep the simulator on the full-length path). The analyzer
// front-end is benchmarked on all three models so the alloc-budget gate
// covers the x86 and AArch64 lookup/effects paths alike.
func suite() map[string]func(b *testing.B) {
	striadGLC := genBlock("striad", "goldencove", kernels.GCC, kernels.O3)
	j3d27V2 := genBlock("j3d27", "neoversev2", kernels.GCC, kernels.O3)
	piZen4 := genBlock("pi", "zen4", kernels.GCC, kernels.O3)

	simBench := func(blk *isa.Block, arch string) func(b *testing.B) {
		m := uarch.MustGet(arch)
		cfg := sim.DefaultConfig(m)
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(blk, m, cfg); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	an := core.New()
	analyzeBench := func(blk *isa.Block, arch string) func(b *testing.B) {
		m := uarch.MustGet(arch)
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := an.Analyze(blk, m); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	// SimCompile isolates the front half sim.Run used to repeat on every
	// call and the artifact cache now runs once per (block, model); its
	// cost is what the warm path saves.
	compileBench := func(blk *isa.Block, arch string) func(b *testing.B) {
		m := uarch.MustGet(arch)
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Compile(blk, m); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	// SimRunWarm is the compile-once execution path: one Program, many
	// runs — what a model sweep or a warm server actually executes.
	warmRunBench := func(blk *isa.Block, arch string) func(b *testing.B) {
		m := uarch.MustGet(arch)
		cfg := sim.DefaultConfig(m)
		p, err := sim.Compile(blk, m)
		if err != nil {
			panic(err)
		}
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	// AnalyzeInternal is the arena-returned zero-allocation analysis path
	// (skeleton + descriptors from the artifact cache, Result from the
	// caller's arena). One warmup call binds the artifacts and sizes the
	// arena before the measured loop.
	internalBench := func(blk *isa.Block, arch string) func(b *testing.B) {
		m := uarch.MustGet(arch)
		ar := &pipeline.InternalArena{}
		if _, err := pipeline.AnalyzeInternal(an, blk, m, ar); err != nil {
			panic(err)
		}
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := pipeline.AnalyzeInternal(an, blk, m, ar); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	// SweepVariantWarm is the steady state of a node-parameter design-space
	// sweep: the variant differs from the base only in node-level fields,
	// so it keeps the base's port signature and the compiled tier serves it
	// the base's skeleton and descriptor table — the setup panics if the
	// variant's first analysis compiled anything. SweepVariantPortDelta is
	// a port-count variant: the signature changes, exactly one descriptor
	// table recompiles, and the skeleton stays shared. Both measured loops
	// run the arena path and are budgeted at exactly 0 allocs/op.
	variantBench := func(blk *isa.Block, arch, param string, value float64, wantDescsDelta int64) func(b *testing.B) {
		m := uarch.MustGet(arch)
		ar := &pipeline.InternalArena{}
		if _, err := pipeline.AnalyzeInternal(an, blk, m, ar); err != nil {
			panic(err)
		}
		vs, err := sweep.Variants(m, []sweep.Axis{{Param: param, Values: []float64{value}}})
		if err != nil {
			panic(err)
		}
		vm := vs[0].Model
		before := pipeline.CompiledArtifacts().Stats()
		var2 := &pipeline.InternalArena{}
		if _, err := pipeline.AnalyzeInternal(an, blk, vm, var2); err != nil {
			panic(err)
		}
		after := pipeline.CompiledArtifacts().Stats()
		if d := after.Descs - before.Descs; d != wantDescsDelta {
			panic(fmt.Sprintf("%s variant on %s/%s: descriptor tables grew by %d, want %d",
				param, arch, blk.Name, d, wantDescsDelta))
		}
		if after.Skeletons != before.Skeletons {
			panic(fmt.Sprintf("%s variant on %s/%s recompiled a skeleton; skeletons are model-independent",
				param, arch, blk.Name))
		}
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := pipeline.AnalyzeInternal(an, blk, vm, var2); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	glcPortValue := float64(uarch.MustGet("goldencove").LoadPorts.Count() - 1)
	return map[string]func(b *testing.B){
		"SimRun/goldencove/striad":                simBench(striadGLC, "goldencove"),
		"SimRun/neoversev2/j3d27":                 simBench(j3d27V2, "neoversev2"),
		"SimRun/zen4/pi":                          simBench(piZen4, "zen4"),
		"SimCompile/goldencove/striad":            compileBench(striadGLC, "goldencove"),
		"SimCompile/neoversev2/j3d27":             compileBench(j3d27V2, "neoversev2"),
		"SimCompile/zen4/pi":                      compileBench(piZen4, "zen4"),
		"SimRunWarm/goldencove/striad":            warmRunBench(striadGLC, "goldencove"),
		"SimRunWarm/neoversev2/j3d27":             warmRunBench(j3d27V2, "neoversev2"),
		"SimRunWarm/zen4/pi":                      warmRunBench(piZen4, "zen4"),
		"Analyze/goldencove/striad":               analyzeBench(striadGLC, "goldencove"),
		"Analyze/neoversev2/j3d27":                analyzeBench(j3d27V2, "neoversev2"),
		"Analyze/zen4/pi":                         analyzeBench(piZen4, "zen4"),
		"AnalyzeInternal/goldencove/striad":       internalBench(striadGLC, "goldencove"),
		"AnalyzeInternal/neoversev2/j3d27":        internalBench(j3d27V2, "neoversev2"),
		"AnalyzeInternal/zen4/pi":                 internalBench(piZen4, "zen4"),
		"ServeAnalyzeWarm/goldencove/striad":      serveWarmBench(striadGLC, "goldencove"),
		"SweepVariantWarm/goldencove/striad":      variantBench(striadGLC, "goldencove", "mem_bandwidth_gbs", 123, 0),
		"SweepVariantWarm/zen4/pi":                variantBench(piZen4, "zen4", "tdp_watts", 123, 0),
		"SweepVariantPortDelta/goldencove/striad": variantBench(striadGLC, "goldencove", "load_ports", glcPortValue, 1),
	}
}

// serveWarmBench measures one warm end-to-end /v1/analyze round trip:
// request decode, parse cache, memo hit, response encode — the steady
// state of a server replaying a hot block. The handler is exercised
// directly (no network) so the measurement is the server's work, not
// loopback TCP.
func serveWarmBench(blk *isa.Block, arch string) func(b *testing.B) {
	api, err := serve.NewWithOptions(serve.Options{JobWorkers: -1})
	if err != nil {
		panic(err)
	}
	h := api.Handler()
	body, err := json.Marshal(map[string]string{
		"arch": arch,
		"name": blk.Name,
		"asm":  blk.Text(),
	})
	if err != nil {
		panic(err)
	}
	do := func() int {
		req := httptest.NewRequest(http.MethodPost, "/v1/analyze", strings.NewReader(string(body)))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code
	}
	if code := do(); code != http.StatusOK {
		panic(fmt.Sprintf("serve warmup: status %d", code))
	}
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if code := do(); code != http.StatusOK {
				b.Fatalf("status %d", code)
			}
		}
	}
}

func measure() map[string]Metrics {
	out := map[string]Metrics{}
	names := make([]string, 0)
	benches := suite()
	for n := range benches {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r := testing.Benchmark(benches[n])
		out[n] = Metrics{
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		fmt.Fprintf(os.Stderr, "benchjson: %-26s %10d ns/op %8d B/op %6d allocs/op\n",
			n, r.NsPerOp(), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}
	return out
}

func readFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

func main() {
	check := flag.String("check", "", "compare allocs/op against the alloc_budget in this BENCH file; non-zero exit on regression")
	update := flag.String("update", "", "rewrite the given BENCH file's current block with fresh measurements")
	flag.Parse()

	if *check != "" && *update != "" {
		fmt.Fprintln(os.Stderr, "benchjson: -check and -update are mutually exclusive")
		os.Exit(2)
	}
	// Validate the target file before spending seconds on measurement.
	var f *File
	if path := *check + *update; path != "" {
		var err error
		if f, err = readFile(path); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}

	cur := measure()

	switch {
	case *check != "":
		failed := false
		names := make([]string, 0, len(f.AllocBudget))
		for n := range f.AllocBudget {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			budget := f.AllocBudget[n]
			m, ok := cur[n]
			if !ok {
				fmt.Fprintf(os.Stderr, "benchjson: FAIL %s: budgeted benchmark no longer measured\n", n)
				failed = true
				continue
			}
			if m.AllocsPerOp > budget {
				fmt.Fprintf(os.Stderr, "benchjson: FAIL %s: %d allocs/op exceeds budget %d\n", n, m.AllocsPerOp, budget)
				failed = true
			} else {
				fmt.Fprintf(os.Stderr, "benchjson: ok   %s: %d allocs/op within budget %d\n", n, m.AllocsPerOp, budget)
			}
		}
		if failed {
			os.Exit(1)
		}
	case *update != "":
		f.Current = cur
		data, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*update, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	default:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cur); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
}
