// Command ibench runs instruction micro-benchmarks (throughput and
// latency) on the simulated cores — the reproduction's counterpart to the
// ibench/OoO-bench tools the paper populates its port models with.
//
// Usage:
//
//	ibench -arch zen4                     # all classes
//	ibench -arch neoversev2 -instr vecfma # one class
//	ibench -arch goldencove -dump-asm -instr gather
//	ibench -machine custom.json           # benchmark a machine file
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"incore/internal/ibench"
	"incore/internal/sim"
	"incore/internal/uarch"
)

func main() {
	arch := flag.String("arch", "zen4", "machine model: "+strings.Join(uarch.Keys(), ", "))
	machineFile := flag.String("machine", "", "benchmark this JSON machine file instead of a registered model")
	machineDir := flag.String("machine-dir", "", "register every *.json machine file in this directory before resolving -arch")
	instr := flag.String("instr", "", "instruction class (empty: all): gather, vecadd, vecmul, vecfma, vecdiv, scalaradd, scalarmul, scalarfma, scalardiv")
	dumpAsm := flag.Bool("dump-asm", false, "print the generated benchmark loops instead of running them")
	flag.Parse()

	archSet := false
	flag.Visit(func(f *flag.Flag) { archSet = archSet || f.Name == "arch" })
	if *machineDir != "" {
		if _, err := uarch.LoadDir(*machineDir); err != nil {
			fatal(err)
		}
	}
	var m *uarch.Model
	var err error
	if *machineFile != "" {
		f, ferr := os.Open(*machineFile)
		if ferr != nil {
			fatal(ferr)
		}
		m, err = uarch.ReadJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err == nil && archSet && *arch != m.Key {
			err = fmt.Errorf("-arch %q does not match machine file key %q", *arch, m.Key)
		}
	} else {
		m, err = uarch.Get(*arch)
	}
	if err != nil {
		fatal(err)
	}
	kinds := ibench.AllKinds()
	if *instr != "" {
		k, err := ibench.ParseKind(*instr)
		if err != nil {
			fatal(err)
		}
		kinds = []ibench.Kind{k}
	}

	if *dumpAsm {
		for _, k := range kinds {
			for _, lat := range []bool{false, true} {
				b, err := ibench.Build(m, k, lat)
				if err != nil {
					fatal(err)
				}
				shape := "throughput"
				if lat {
					shape = "latency"
				}
				fmt.Printf("# %s — %s (%s)\n%s\n", m.Name, k, shape, b.Text())
			}
		}
		return
	}

	fmt.Printf("%s (%s): instruction micro-benchmarks on the core simulator\n", m.Name, m.CPU)
	fmt.Printf("%-16s %10s %12s %9s\n", "class", "instr/cy", "elems/cy", "lat [cy]")
	cfg := sim.DefaultConfig(m)
	for _, k := range kinds {
		r, err := ibench.Measure(m, k, cfg)
		if err != nil {
			fatal(err)
		}
		unit := ""
		if k == ibench.Gather {
			unit = " CL/cy"
		}
		fmt.Printf("%-16s %10.2f %12.2f%s %8.1f\n", k, r.ThroughputInstr, r.ThroughputElems, unit, r.LatencyCy)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ibench: %v\n", err)
	os.Exit(1)
}
