// Command sweep runs a design-space sweep: a base machine model, a set
// of parameter axes, and the architecture's kernel validation suite (or
// an explicit assembly file) expanded into the full cross-product of
// variant models, each analyzed through the shared pipeline caches, and
// reduced to Pareto fronts (predicted cycles vs. hardware cost, and
// sustained GF/s vs. TDP when the model carries a frequency governor).
//
// Usage:
//
//	sweep -arch zen4 -axis tdp_watts=200,240,280 -axis mem_bandwidth_gbs=60,90,120
//	      [-machine FILE] [-asm FILE] [-j N] [-cache-dir DIR] [-format text|json]
//	      [-max-variants N]
//
// Variant identity follows the two-key contract (DESIGN.md "Design-space
// exploration"): results are cached under each variant's full CacheKey
// (key@fingerprint — warm-resumable across runs via -cache-dir, never
// colliding with the built-ins), while compiled artifacts are shared
// between variants with equal port signatures — so a node-parameter
// sweep parses each block and compiles each skeleton exactly once no
// matter how many variants it runs.
//
// Output on stdout is byte-identical for the same inputs at any -j;
// stderr carries the cache accounting (same shape as cmd/repro), which
// CI uses to gate the sharing contract.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"incore/internal/pipeline"
	"incore/internal/sweep"
	"incore/internal/uarch"
)

func main() {
	arch := flag.String("arch", "", "base machine model key (built-in or registered)")
	machine := flag.String("machine", "", "base machine model from this JSON machine file instead of -arch")
	asmFile := flag.String("asm", "", "sweep this assembly file instead of the kernel validation suite")
	workers := flag.Int("j", 1, "pipeline workers (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", "", "persistent result store directory (empty = process-local cache only)")
	format := flag.String("format", "text", "output format: text or json")
	maxVariants := flag.Int("max-variants", 4096, "refuse cross-products larger than this (0 = unlimited)")
	var axes []sweep.Axis
	flag.Func("axis", "swept parameter as name=v1,v2,... (repeatable; see -list-params)", func(s string) error {
		ax, err := parseAxis(s)
		if err != nil {
			return err
		}
		axes = append(axes, ax)
		return nil
	})
	listParams := flag.Bool("list-params", false, "list sweepable parameters and exit")
	flag.Parse()

	if *listParams {
		for _, p := range sweep.Params() {
			fmt.Println(p)
		}
		return
	}
	if len(axes) == 0 {
		fail("at least one -axis is required")
	}

	var base *uarch.Model
	var err error
	switch {
	case *machine != "" && *arch != "":
		fail("-arch and -machine are mutually exclusive")
	case *machine != "":
		f, err := os.Open(*machine)
		if err != nil {
			fail("%v", err)
		}
		base, err = uarch.ReadJSON(f)
		f.Close()
		if err != nil {
			fail("%s: %v", *machine, err)
		}
	case *arch != "":
		base, err = uarch.Get(*arch)
		if err != nil {
			fail("%v", err)
		}
	default:
		fail("one of -arch or -machine is required")
	}

	nw := pipeline.SetDefaultWorkers(*workers)
	if *cacheDir != "" {
		st, err := pipeline.AttachStore(*cacheDir)
		if err != nil {
			fail("%v", err)
		}
		fmt.Fprintf(os.Stderr, "sweep: store attached at %s (schema %d)\n", st.Dir(), pipeline.StoreSchema())
	}

	var blocks []sweep.Block
	if *asmFile != "" {
		data, err := os.ReadFile(*asmFile)
		if err != nil {
			fail("%v", err)
		}
		b, err := pipeline.ParseRequestBlock(*asmFile, base.Key, base.Dialect, string(data))
		if err != nil {
			fail("%s: %v", *asmFile, err)
		}
		blocks = []sweep.Block{{Name: *asmFile, B: b}}
	} else {
		blocks, err = sweep.SuiteBlocks(base.Key)
		if err != nil {
			fail("no kernel suite for %q (%v); use -asm FILE", base.Key, err)
		}
	}

	res, err := sweep.Run(base, axes, blocks, sweep.Options{MaxVariants: *maxVariants})
	if err != nil {
		fail("%v", err)
	}

	switch *format {
	case "text":
		os.Stdout.WriteString(res.Render())
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fail("%v", err)
		}
	default:
		fail("unknown format %q", *format)
	}

	// Accounting on stderr, in cmd/repro's shapes plus the sweep-level
	// sharing observables — CI greps these to gate the contract.
	st := pipeline.Shared().Stats()
	fmt.Fprintf(os.Stderr, "sweep: pipeline j=%d, cache %d hits / %d misses (%d entries)\n",
		nw, st.Hits, st.Misses, st.Entries)
	if ps := pipeline.PersistentStore(); ps != nil {
		s := ps.Stats()
		fmt.Fprintf(os.Stderr, "sweep: store %d warm / %d cold (mem %d, disk %d, evictions %d)\n",
			s.Warm(), s.Misses, s.MemHits, s.DiskHits, s.Evictions)
	}
	cs := pipeline.CompiledArtifacts().Stats()
	fmt.Fprintf(os.Stderr, "sweep: compiled %d programs / %d skeletons / %d mca, %d hits + %d attaches / %d compiles (~%d KiB)\n",
		cs.Programs, cs.Skeletons, cs.MCA, cs.Hits, cs.Attaches, cs.Compiles, cs.BytesEstimated/1024)
	fmt.Fprintf(os.Stderr, "sweep: %d variants / %d distinct port signatures over %d blocks (%d parsed), cells %d warm / %d cold\n",
		len(res.Variants), res.DistinctSignatures, len(res.Blocks), cs.Blocks, res.Warm, res.Cold)
}

// parseAxis parses one -axis flag value: name=v1,v2,...
func parseAxis(s string) (sweep.Axis, error) {
	name, vals, ok := strings.Cut(s, "=")
	if !ok || name == "" || vals == "" {
		return sweep.Axis{}, fmt.Errorf("axis %q: want name=v1,v2,...", s)
	}
	ax := sweep.Axis{Param: name}
	for _, f := range strings.Split(vals, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return sweep.Axis{}, fmt.Errorf("axis %q: bad value %q", name, f)
		}
		ax.Values = append(ax.Values, v)
	}
	sort.Float64s(ax.Values)
	return ax, nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sweep: "+format+"\n", args...)
	os.Exit(1)
}
