// Command wabench runs the write-allocate evasion study (paper Fig. 4 and
// Sec. III) for one system or all three, printing the traffic ratio per
// core count, and optionally a SpecI2M threshold sweep (ablation).
//
// Usage:
//
//	wabench [-arch all|goldencove|neoversev2|zen4] [-nt] [-sweep-threshold] [-j N] [-cache-dir DIR]
//
// -j N runs the per-system curves as parallel pipeline jobs (default 1,
// 0 = GOMAXPROCS); output order and bytes are identical at any -j.
// -cache-dir DIR attaches the persistent result store at DIR so WA
// curves survive across runs; warm/cold lookup counts are then reported
// on stderr. Output bytes are identical warm or cold.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"incore/internal/memsim"
	"incore/internal/nodes"
	"incore/internal/pipeline"
	"incore/internal/uarch"
)

func main() {
	arch := flag.String("arch", "all", "system: all, "+strings.Join(uarch.Keys(), ", "))
	nt := flag.Bool("nt", false, "use non-temporal stores")
	sweep := flag.Bool("sweep-threshold", false, "SpecI2M threshold ablation (goldencove)")
	workers := flag.Int("j", 1, "pipeline workers (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", "", "persistent result store directory (empty = process-local cache only)")
	flag.Parse()
	pipeline.SetDefaultWorkers(*workers)
	if *cacheDir != "" {
		if _, err := pipeline.AttachStore(*cacheDir); err != nil {
			fmt.Fprintf(os.Stderr, "wabench: %v\n", err)
			os.Exit(1)
		}
	}

	if *sweep {
		sweepThreshold()
		return
	}
	keys := []string{"neoversev2", "goldencove", "zen4"}
	if *arch != "all" {
		keys = []string{*arch}
	}
	outputs, err := pipeline.Map(pipeline.Default(), keys, func(key string) (string, error) {
		n, err := nodes.Get(key)
		if err != nil {
			return "", err
		}
		counts := memsim.DefaultCounts(n.Cores)
		ratios, err := pipeline.WACurve(key, *nt, counts)
		if err != nil {
			return "", err
		}
		label := key
		if *nt {
			label += " (NT stores)"
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "%s: traffic/stored ratio by active cores\n", label)
		sorted := append([]int(nil), counts...)
		sort.Ints(sorted)
		for _, c := range sorted {
			fmt.Fprintf(&sb, "  %3d cores: %.3f\n", c, ratios[c])
		}
		return sb.String(), nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "wabench: %v\n", err)
		os.Exit(1)
	}
	for _, out := range outputs {
		os.Stdout.WriteString(out)
	}
	if ps := pipeline.PersistentStore(); ps != nil {
		s := ps.Stats()
		fmt.Fprintf(os.Stderr, "wabench: store %d warm / %d cold (mem %d, disk %d, evictions %d)\n",
			s.Warm(), s.Misses, s.MemHits, s.DiskHits, s.Evictions)
	}
	cs := pipeline.CompiledArtifacts().Stats()
	fmt.Fprintf(os.Stderr, "wabench: compiled %d programs / %d skeletons / %d mca, %d hits + %d attaches / %d compiles (~%d KiB)\n",
		cs.Programs, cs.Skeletons, cs.MCA, cs.Hits, cs.Attaches, cs.Compiles, cs.BytesEstimated/1024)
}

// sweepThreshold shows how the SpecI2M utilization threshold shapes the
// SPR curve (DESIGN.md ablation #3).
func sweepThreshold() {
	for _, thresh := range []float64{0.4, 0.55, 0.65, 0.8} {
		cfg := memsim.MustConfigFor("goldencove")
		cfg.SpecI2MThreshold = thresh
		cfg.SpecI2MRampEnd = thresh + 0.25
		sys, err := memsim.NewSystem(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wabench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("SpecI2M threshold %.2f:\n", thresh)
		for _, c := range []int{4, 13, 26, 39, 52} {
			r, err := sys.RunStoreStream(c, memsim.DefaultStoreLinesPerCore, false)
			if err != nil {
				fmt.Fprintf(os.Stderr, "wabench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("  %3d cores: %.3f\n", c, r.WARatio())
		}
	}
}
