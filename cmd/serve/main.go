// Command serve runs the in-core analysis service: an HTTP JSON API that
// answers OSACA-style "analyze this block on this uarch" requests through
// the same pipeline memo cache and persistent result store as batch
// reproduction, so served traffic and cmd/repro share one cache and one
// determinism contract.
//
// Usage:
//
//	serve [-addr :8080] [-cache-dir DIR] [-j N]
//
// Endpoints:
//
//	POST /v1/analyze  {"arch":"zen4","asm":"...","name":"..."}
//	POST /v1/batch    {"requests":[{...},{...}]}
//	GET  /v1/models
//	GET  /healthz
//
// Example:
//
//	serve -cache-dir /var/cache/incore &
//	curl -s localhost:8080/v1/analyze -d '{"arch":"goldencove","asm":".L0:\n\taddq $8, %rax\n\tcmpq %rbx, %rax\n\tjb .L0\n"}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"incore/internal/pipeline"
	"incore/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheDir := flag.String("cache-dir", "", "persistent result store directory (empty = process-local cache only)")
	workers := flag.Int("j", 0, "pipeline workers for batch requests (0 = GOMAXPROCS)")
	flag.Parse()

	nw := pipeline.SetDefaultWorkers(*workers)
	if *cacheDir != "" {
		st, err := pipeline.AttachStore(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			os.Exit(1)
		}
		log.Printf("serve: store attached at %s (schema %d)", st.Dir(), pipeline.StoreSchema())
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           serve.New().Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
	}
	log.Printf("serve: listening on %s (pipeline j=%d)", *addr, nw)
	if err := srv.ListenAndServe(); err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(1)
	}
}
