// Command serve runs the in-core analysis service: an HTTP JSON API that
// answers OSACA-style "analyze this block on this uarch" requests through
// the same pipeline memo cache and persistent result store as batch
// reproduction, so served traffic and cmd/repro share one cache and one
// determinism contract.
//
// Usage:
//
//	serve [-addr :8080] [-cache-dir DIR] [-jobs-dir DIR] [-job-workers N] [-j N]
//	      [-peer-store URL] [-peer-timeout D] [-peer-fault-rate F] [-peer-fault-seed N]
//	      [-machine FILE ...] [-machine-dir DIR]
//	      [-max-body BYTES] [-max-instrs N] [-analysis-timeout D] [-max-sweep-variants N]
//	      [-cpuprofile FILE] [-memprofile FILE] [-pprof ADDR]
//
// -machine (repeatable) and -machine-dir register JSON machine files at
// startup, so their keys serve alongside the built-ins; clients can also
// register models at runtime via POST /v1/models or send inline
// "machine" objects on analyze/batch requests.
//
// -jobs-dir makes the /v1/jobs queue durable: job records persist next
// to the result store and a restarted server resumes interrupted jobs,
// with already-stored items served warm (no recompute). It defaults to
// <cache-dir>/jobs when -cache-dir is set; without either, jobs live in
// memory only. Graceful shutdown (SIGINT/SIGTERM) drains in-flight job
// items and checkpoints every job before exit.
//
// -peer-store URL attaches a replica's /v1/store endpoints as a third
// cache tier behind the local store (requires -cache-dir): local misses
// consult the peer (verified on fetch, retried with backoff, circuit-
// broken when the peer dies — see DESIGN.md "Fault tolerance"), and
// local stores replicate to the peer via async write-behind. The peer
// is strictly an optimization: any peer failure degrades to a local
// cache miss, never to a request failure. -peer-fault-rate injects
// deterministic faults (drops, delays, resets, truncation, corruption)
// into peer traffic for chaos testing; results must stay byte-identical
// at any rate.
//
// With -cpuprofile/-memprofile, runtime/pprof profiles cover the serving
// window and are written on graceful shutdown. -pprof additionally mounts
// the interactive net/http/pprof endpoints on a separate listener (keep it
// loopback: profiles expose heap contents), away from the public API mux.
//
// Endpoints (see API.md for the full contract):
//
//	POST   /v1/analyze  {"arch":"zen4","asm":"...","name":"..."} or {"machine":{...},"asm":"..."}
//	POST   /v1/batch    {"requests":[{...},{...}]}
//	POST   /v1/sweep    {"arch":"zen4","axes":[{"param":"tdp_watts","values":[200,280]}]}
//	POST   /v1/jobs     {"requests":[{...},{...}]} → 202 {"id","status",...}
//	GET    /v1/jobs/{id}
//	GET    /v1/jobs?state=running
//	DELETE /v1/jobs/{id}
//	GET    /v1/models?limit=10&offset=0&arch=x86
//	POST   /v1/models   (body: machine-file JSON)
//	GET    /v1/models/{key}
//	GET    /v1/store/{hash}   (peer replication)
//	PUT    /v1/store/{hash}   (peer replication)
//	GET    /healthz
//	GET    /metrics
//
// Example:
//
//	serve -cache-dir /var/cache/incore &
//	curl -s localhost:8080/v1/analyze -d '{"arch":"goldencove","asm":".L0:\n\taddq $8, %rax\n\tcmpq %rbx, %rax\n\tjb .L0\n"}'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"incore/internal/faultinject"
	"incore/internal/pipeline"
	"incore/internal/profiling"
	"incore/internal/remotestore"
	"incore/internal/serve"
	"incore/internal/uarch"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheDir := flag.String("cache-dir", "", "persistent result store directory (empty = process-local cache only)")
	workers := flag.Int("j", 0, "pipeline workers for batch requests (0 = GOMAXPROCS)")
	var machineFiles []string
	flag.Func("machine", "register this JSON machine file at startup (repeatable)", func(path string) error {
		machineFiles = append(machineFiles, path)
		return nil
	})
	machineDir := flag.String("machine-dir", "", "register every *.json machine file in this directory at startup")
	jobsDir := flag.String("jobs-dir", "", "durable job-queue directory (default <cache-dir>/jobs when -cache-dir is set; empty without it = in-memory jobs)")
	jobWorkers := flag.Int("job-workers", 0, "workers draining /v1/jobs items (0 = GOMAXPROCS)")
	peerStore := flag.String("peer-store", "", "peer replica base URL for the remote store tier (requires -cache-dir)")
	peerTimeout := flag.Duration("peer-timeout", remotestore.DefaultTimeout, "per-attempt timeout for peer store requests")
	peerFaultRate := flag.Float64("peer-fault-rate", 0, "inject faults into this fraction of peer requests (chaos testing; 0 = off)")
	peerFaultSeed := flag.Int64("peer-fault-seed", 1, "deterministic seed for -peer-fault-rate")
	maxBody := flag.Int64("max-body", serve.DefaultMaxBodyBytes, "request body size cap in bytes (413 beyond)")
	maxInstrs := flag.Int("max-instrs", serve.DefaultMaxBlockInstrs, "per-block instruction cap (413 beyond)")
	analysisTimeout := flag.Duration("analysis-timeout", serve.DefaultAnalysisTimeout, "per-block analysis deadline (503 beyond; negative disables)")
	maxSweepVariants := flag.Int("max-sweep-variants", serve.DefaultMaxSweepVariants, "per-request sweep cross-product cap (413 beyond; negative disables)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the serving window to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on shutdown")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this loopback address (e.g. 127.0.0.1:6060; empty = off)")
	flag.Parse()

	if *machineDir != "" {
		models, err := uarch.LoadDir(*machineDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			os.Exit(1)
		}
		for _, m := range models {
			log.Printf("serve: registered %s (%s)", m.Key, m.Fingerprint()[:12])
		}
	}
	for _, path := range machineFiles {
		m, err := uarch.LoadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			os.Exit(1)
		}
		log.Printf("serve: registered %s (%s)", m.Key, m.Fingerprint()[:12])
	}

	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(1)
	}

	nw := pipeline.SetDefaultWorkers(*workers)
	var peer *remotestore.Client
	if *cacheDir != "" {
		st, err := pipeline.AttachStore(*cacheDir)
		if err != nil {
			stopProfiles()
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			os.Exit(1)
		}
		log.Printf("serve: store attached at %s (schema %d)", st.Dir(), pipeline.StoreSchema())
		if *jobsDir == "" {
			// Durable jobs live next to the store by default, so one
			// -cache-dir flag yields a fully restart-resumable server.
			*jobsDir = filepath.Join(*cacheDir, "jobs")
		}
		if *peerStore != "" {
			var transport http.RoundTripper
			if *peerFaultRate > 0 {
				transport = faultinject.New(nil, faultinject.Config{Rate: *peerFaultRate, Seed: *peerFaultSeed})
				log.Printf("serve: injecting faults into %.0f%% of peer requests (seed %d)", *peerFaultRate*100, *peerFaultSeed)
			}
			peer, err = remotestore.New(remotestore.Options{
				BaseURL:   *peerStore,
				Schema:    pipeline.StoreSchema(),
				Timeout:   *peerTimeout,
				Transport: transport,
			})
			if err != nil {
				stopProfiles()
				fmt.Fprintf(os.Stderr, "serve: %v\n", err)
				os.Exit(1)
			}
			st.SetRemote(peer)
			log.Printf("serve: peer store tier at %s (timeout %s)", peer.BaseURL(), *peerTimeout)
		}
	} else if *peerStore != "" {
		stopProfiles()
		fmt.Fprintf(os.Stderr, "serve: -peer-store requires -cache-dir (the remote tier sits behind the local store)\n")
		os.Exit(1)
	}

	api, err := serve.NewWithOptions(serve.Options{
		MaxBodyBytes:     *maxBody,
		MaxBlockInstrs:   *maxInstrs,
		AnalysisTimeout:  *analysisTimeout,
		MaxSweepVariants: *maxSweepVariants,
		JobsDir:          *jobsDir,
		JobWorkers:       *jobWorkers,
		AccessLog:        log.Default(),
	})
	if err != nil {
		stopProfiles()
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(1)
	}
	if *jobsDir != "" {
		log.Printf("serve: durable job queue at %s", *jobsDir)
	}

	if *pprofAddr != "" {
		// The profiler gets its own mux on its own (loopback) listener:
		// pprof endpoints leak heap contents and must never ride the
		// public API handler or inherit its middleware.
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			stopProfiles()
			fmt.Fprintf(os.Stderr, "serve: -pprof: %v\n", err)
			os.Exit(1)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.Serve(ln, pmux); err != nil {
				log.Printf("serve: pprof listener: %v", err)
			}
		}()
		log.Printf("serve: pprof on http://%s/debug/pprof/", ln.Addr())
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           api.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
	}
	// Graceful shutdown on SIGINT/SIGTERM: drain in-flight requests,
	// checkpoint the job queue (running items revert to pending so a
	// restart resumes them), then flush any active pprof profiles.
	idle := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("serve: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "serve: shutdown: %v\n", err)
		}
		api.Close()
		if peer != nil {
			// Drain queued write-behind PUTs so a cleanly stopped replica
			// leaves its peer as warm as possible.
			peer.Close()
		}
		close(idle)
	}()

	log.Printf("serve: listening on %s (pipeline j=%d)", *addr, nw)
	if err := srv.ListenAndServe(); err != http.ErrServerClosed {
		stopProfiles()
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(1)
	}
	<-idle
	stopProfiles()
}
