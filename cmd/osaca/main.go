// Command osaca statically analyses an assembly loop body against one of
// the three machine models, printing the OSACA-style port-pressure report,
// the critical path, the loop-carried dependency, and the lower-bound
// prediction — optionally alongside the LLVM-MCA-style baseline, a
// simulated "measurement", and an ECM node-level prediction.
//
// OSACA/LLVM-MCA/IACA region markers in the input are honored.
//
// Usage:
//
//	osaca -arch goldencove|neoversev2|zen4 [-compare] [-sim] [-ecm MEM] [-nt] [-strict] file.s
//	osaca -machine custom.json [-sim] [-ecm MEM] file.s
//	osaca -machine-dir models/ -arch mykey file.s
//	echo "..." | osaca -arch zen4 -
//
// -machine analyzes against a JSON machine file directly (the file's key
// may shadow a built-in: results are cached under the file's content
// fingerprint, never the built-in's). -machine-dir registers every
// machine file in a directory, making their keys available to -arch.
//
// Instructions outside the model's tables degrade to a conservative
// synthesized descriptor and the report gains a coverage footer; pass
// -strict to reject such blocks with an error instead.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"incore/internal/core"
	"incore/internal/ecm"
	"incore/internal/isa"
	"incore/internal/mca"
	"incore/internal/profiling"
	"incore/internal/sim"
	"incore/internal/uarch"
)

func main() {
	arch := flag.String("arch", "goldencove", "machine model: "+strings.Join(uarch.Keys(), ", "))
	machineFile := flag.String("machine", "", "analyze against this JSON machine file instead of a registered model")
	machineDir := flag.String("machine-dir", "", "register every *.json machine file in this directory before resolving -arch")
	compare := flag.Bool("compare", false, "also run the LLVM-MCA-style baseline")
	simulate := flag.Bool("sim", false, "also run the core simulator (simulated measurement)")
	ecmLevel := flag.String("ecm", "", "ECM prediction for a working set in L1|L2|L3|MEM")
	nt := flag.Bool("nt", false, "assume non-temporal stores (no write-allocate) in the ECM prediction")
	strict := flag.Bool("strict", false, "error on instructions outside the model's tables instead of degrading to conservative descriptors")
	traceFile := flag.String("trace", "", "write a Chrome trace of the simulation to this file (implies -sim)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation (heap) profile to this file")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: osaca -arch <model> [-compare] [-sim] [-ecm LEVEL] <file.s|->")
		os.Exit(2)
	}
	stopProfiling, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer stopProfiling()
	var src []byte
	if flag.Arg(0) == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		fatal(err)
	}

	archSet := false
	flag.Visit(func(f *flag.Flag) { archSet = archSet || f.Name == "arch" })
	if *machineDir != "" {
		if _, err := uarch.LoadDir(*machineDir); err != nil {
			fatal(err)
		}
	}
	var m *uarch.Model
	if *machineFile != "" {
		// Used directly, not registered: a machine file may share a
		// built-in's key (the exported-then-edited workflow) and still
		// gets its own fingerprinted cache identity.
		f, ferr := os.Open(*machineFile)
		if ferr != nil {
			fatal(ferr)
		}
		m, err = uarch.ReadJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		// -arch defaults to goldencove, so only an explicit -arch can
		// contradict the machine file; mirror the serve endpoint's
		// mismatch rejection instead of silently preferring the file.
		if err == nil && archSet && *arch != m.Key {
			err = fmt.Errorf("-arch %q does not match machine file key %q", *arch, m.Key)
		}
	} else {
		m, err = uarch.Get(*arch)
	}
	if err != nil {
		fatal(err)
	}
	b, err := isa.ParseMarkedBlock(flag.Arg(0), m.Key, m.Dialect, string(src))
	if err != nil {
		fatal(err)
	}
	an := core.New()
	if *strict {
		an.Opt.DegradeUnknown = false
	}
	res, err := an.Analyze(b, m)
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.Report())

	if *compare {
		mr, err := mca.PredictDefault(b, m)
		if err != nil {
			fatal(fmt.Errorf("mca: %w", err))
		}
		fmt.Printf("llvm-mca-style     : %7.2f cy/it\n", mr.CyclesPerIter)
	}
	if *simulate || *traceFile != "" {
		cfg := sim.DefaultConfig(m)
		var rec sim.TraceRecorder
		if *traceFile != "" {
			cfg.Trace = rec.Hook(b.Len())
		}
		sr, err := sim.Run(b, m, cfg)
		if err != nil {
			fatal(fmt.Errorf("sim: %w", err))
		}
		fmt.Printf("simulated measured : %7.2f cy/it\n", sr.CyclesPerIter)
		fmt.Printf("port utilization   :")
		for p, u := range sr.PortUtilization() {
			if u >= 0.005 {
				fmt.Printf(" %s=%.0f%%", m.Ports[p], 100*u)
			}
		}
		fmt.Println()
		if *traceFile != "" {
			f, err := os.Create(*traceFile)
			if err != nil {
				fatal(err)
			}
			if err := rec.WriteJSON(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("trace written      : %s (%d events)\n", *traceFile, rec.Len())
		}
	}
	if *ecmLevel != "" {
		if err := runECM(b, m, res, *ecmLevel, *nt); err != nil {
			fatal(err)
		}
	}
}

func runECM(b *isa.Block, m *uarch.Model, res *core.Result, levelName string, nt bool) error {
	var level ecm.MemLevel
	switch strings.ToUpper(levelName) {
	case "L1":
		level = ecm.L1
	case "L2":
		level = ecm.L2
	case "L3":
		level = ecm.L3
	case "MEM":
		level = ecm.MEM
	default:
		return fmt.Errorf("ecm: unknown level %q (want L1|L2|L3|MEM)", levelName)
	}
	em, err := ecm.ForModel(m)
	if err != nil {
		return err
	}
	elems := elemsPerIter(b, m)
	tOL, tnOL, err := ecm.InCoreInputs(res, elems)
	if err != nil {
		return err
	}
	wa := ecm.WAFactorFor(m.Key, true)
	if nt {
		wa = 1.0
	}
	tr := ecm.TrafficForBlock(b, m.Dialect, wa)
	r := em.Predict(tOL, tnOL, tr, level)
	fmt.Print(r.Report())
	fmt.Printf("  = %.2f cy/it at %d elements/iteration\n", r.CyclesPerIt(elems), elems)
	return nil
}

// elemsPerIter estimates double-precision elements processed per loop
// iteration from the widest store stream (falling back to loads).
func elemsPerIter(b *isa.Block, m *uarch.Model) int {
	loadBits, storeBits := 0, 0
	for i := range b.Instrs {
		in := &b.Instrs[i]
		w := 64
		for _, op := range in.Operands {
			if op.Kind == isa.OpReg && op.Reg.Class == isa.ClassVec && op.Reg.Width > w {
				w = op.Reg.Width
			}
		}
		eff := isa.InstrEffects(in, m.Dialect)
		storeBits += len(eff.StoreOps) * w
		loadBits += len(eff.LoadOps) * w
	}
	if storeBits > 0 {
		return storeBits / 64
	}
	if loadBits > 0 {
		return loadBits / 64
	}
	return 1
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "osaca: %v\n", err)
	os.Exit(1)
}
