// Command corpus batch-analyzes real-world assembly listings — compiler
// output from `gcc -S`, `go build -gcflags=-S`, or hand-written kernels —
// against one machine model, with per-block coverage accounting.
//
// Each input file is ingested through internal/corpus: explicit
// OSACA/LLVM-MCA/IACA markers win; otherwise every innermost
// backward-branch loop becomes a block; a file with neither is analyzed
// whole. Unknown mnemonics degrade to conservative descriptors and are
// counted, not fatal.
//
// Usage:
//
//	corpus -arch goldencove|neoversev2|zen4 [-machine FILE] [-machine-dir DIR]
//	       [-min-coverage F] [-format text|json] [-cache-dir DIR] [-j N] file.s ...
//
// The exit status is the CI contract: nonzero when any block fails to
// parse or analyze, or when aggregate coverage falls below -min-coverage.
//
// Example:
//
//	gcc -S -O3 kernel.c -o kernel.s
//	corpus -arch zen4 -min-coverage 0.9 kernel.s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"incore/internal/corpus"
	"incore/internal/pipeline"
	"incore/internal/uarch"
)

func main() {
	arch := flag.String("arch", "goldencove", "machine model: "+strings.Join(uarch.Keys(), ", "))
	machineFile := flag.String("machine", "", "analyze against this JSON machine file instead of a registered model")
	machineDir := flag.String("machine-dir", "", "register every *.json machine file in this directory before resolving -arch")
	minCoverage := flag.Float64("min-coverage", 0, "fail (exit 1) when aggregate covered fraction falls below this floor in [0,1]")
	format := flag.String("format", "text", "output format: text or json")
	cacheDir := flag.String("cache-dir", "", "persistent result store directory (warm runs skip recomputation)")
	workers := flag.Int("j", 0, "analysis workers (0 = GOMAXPROCS)")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: corpus -arch <model> [-min-coverage F] <file.s> ...")
		os.Exit(2)
	}
	if *machineDir != "" {
		if _, err := uarch.LoadDir(*machineDir); err != nil {
			fatal(err)
		}
	}
	var m *uarch.Model
	var err error
	if *machineFile != "" {
		m, err = uarch.LoadFile(*machineFile)
	} else {
		m, err = uarch.Get(*arch)
	}
	if err != nil {
		fatal(err)
	}
	pipeline.SetDefaultWorkers(*workers)
	if *cacheDir != "" {
		if _, err := pipeline.AttachStore(*cacheDir); err != nil {
			fatal(err)
		}
	}

	ig := &corpus.Ingester{Model: m}
	// One pipeline map over all files: blocks deduplicate through the
	// shared memo tier exactly like experiment jobs and served requests.
	files, _ := pipeline.Map(pipeline.Default(), flag.Args(), func(path string) (corpus.FileResult, error) {
		return ig.IngestFile(path), nil
	})
	sum := corpus.Summarize(files)

	switch *format {
	case "json":
		out := struct {
			Arch    string              `json:"arch"`
			Files   []corpus.FileResult `json:"files"`
			Summary corpus.Summary      `json:"summary"`
		}{Arch: m.Key, Files: files, Summary: sum}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	case "text":
		printText(files, sum)
	default:
		fatal(fmt.Errorf("unknown -format %q (want text or json)", *format))
	}

	if sum.Failures > 0 {
		fmt.Fprintf(os.Stderr, "corpus: %d of %d blocks failed\n", sum.Failures, sum.Blocks)
		os.Exit(1)
	}
	if sum.Fraction() < *minCoverage {
		fmt.Fprintf(os.Stderr, "corpus: aggregate coverage %.1f%% below floor %.1f%%\n",
			100*sum.Fraction(), 100**minCoverage)
		os.Exit(1)
	}
}

func printText(files []corpus.FileResult, sum corpus.Summary) {
	for _, f := range files {
		for _, b := range f.Blocks {
			if b.Err != nil {
				fmt.Printf("%-44s FAIL  %v\n", b.Name, b.Err)
				continue
			}
			c := b.Coverage
			line := fmt.Sprintf("%-44s %4d instrs  cov %5.1f%% (%d/%d/%d)  %7.2f cy/it [%s]",
				b.Name, b.Instrs, 100*c.Fraction(), c.Exact, c.Fallback, c.Unknown, b.Prediction, b.Bound)
			if len(c.UnknownMnemonics) > 0 {
				line += "  unknown: " + strings.Join(c.UnknownMnemonics, ",")
			}
			fmt.Println(line)
		}
	}
	fmt.Printf("%d files, %d blocks, %d failures; aggregate coverage %.1f%% over %d instrs (%d exact, %d fallback, %d unknown)\n",
		sum.Files, sum.Blocks, sum.Failures, 100*sum.Fraction(),
		sum.Coverage.Total(), sum.Coverage.Exact, sum.Coverage.Fallback, sum.Coverage.Unknown)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "corpus: %v\n", err)
	os.Exit(1)
}
