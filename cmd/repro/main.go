// Command repro regenerates every table and figure of the paper's
// evaluation on the simulation substrate.
//
// Usage:
//
//	repro [-exp all|table1|table2|table3|fig2|fig3|fig4]
package main

import (
	"flag"
	"fmt"
	"os"

	"incore/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, table1, table2, table3, fig2, fig3, fig4, ecm")
	flag.Parse()

	runners := map[string]func() (string, error){
		"table1": func() (string, error) {
			t, err := experiments.RunTable1()
			if err != nil {
				return "", err
			}
			return t.Render(), nil
		},
		"table2": func() (string, error) {
			t, err := experiments.RunTable2()
			if err != nil {
				return "", err
			}
			return t.Render(), nil
		},
		"table3": func() (string, error) {
			t, err := experiments.RunTable3()
			if err != nil {
				return "", err
			}
			return t.Render(), nil
		},
		"fig2": func() (string, error) {
			f, err := experiments.RunFig2()
			if err != nil {
				return "", err
			}
			return f.Render(), nil
		},
		"fig3": func() (string, error) {
			f, err := experiments.RunFig3()
			if err != nil {
				return "", err
			}
			return f.Render(), nil
		},
		"fig4": func() (string, error) {
			f, err := experiments.RunFig4()
			if err != nil {
				return "", err
			}
			return f.Render(), nil
		},
		"ecm": func() (string, error) {
			s, err := experiments.RunECM()
			if err != nil {
				return "", err
			}
			return s.Render(), nil
		},
		"nodeperf": func() (string, error) {
			s, err := experiments.RunNodePerf()
			if err != nil {
				return "", err
			}
			return s.Render(), nil
		},
	}
	order := []string{"table1", "table2", "table3", "fig2", "fig3", "fig4", "ecm", "nodeperf"}

	run := func(name string) {
		r, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "repro: unknown experiment %q (want one of %v)\n", name, order)
			os.Exit(2)
		}
		out, err := r()
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}

	if *exp == "all" {
		for _, name := range order {
			fmt.Printf("================ %s ================\n", name)
			run(name)
		}
		return
	}
	run(*exp)
}
