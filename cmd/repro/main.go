// Command repro regenerates every table and figure of the paper's
// evaluation on the simulation substrate.
//
// Usage:
//
//	repro [-exp all|table1|table2|table3|fig2|fig3|fig4|ecm|nodeperf] [-j N] [-format text|json] [-cache-dir DIR]
//	      [-cpuprofile FILE] [-memprofile FILE]
//
// Flags:
//
//	-j N
//	    Run experiment jobs on N pipeline workers (default 1, the serial
//	    reference path; 0 selects GOMAXPROCS). Output is byte-identical
//	    at any -j: the pipeline collects results in submission order, so
//	    parallelism changes wall-clock time only. With -exp all the
//	    experiments themselves also run concurrently as one job graph.
//	-format text|json
//	    text (default) renders the paper-layout tables and figures.
//	    json emits one object with the rendered output per experiment
//	    plus the pipeline cache accounting.
//	-cache-dir DIR
//	    Attach the persistent content-addressed result store at DIR
//	    (created if needed) under the memo cache, so analyzer, simulator,
//	    and WA-curve results survive across runs. Text-mode output bytes
//	    are identical with or without it, warm or cold; only the stderr
//	    accounting (and wall-clock time) changes. JSON mode embeds the
//	    store accounting in its output object, so there only the
//	    experiments array is run-invariant.
//	-cpuprofile FILE / -memprofile FILE
//	    Write runtime/pprof CPU and allocation profiles, so performance
//	    work on the pipeline can show where cycles and allocations go.
//
// After a text run the pipeline's memo-cache accounting (hits, misses,
// entries) is reported on stderr — plus the store's warm/cold lookup
// counts when -cache-dir is given; stdout carries only the artifacts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"incore/internal/experiments"
	"incore/internal/pipeline"
	"incore/internal/profiling"
	"incore/internal/store"
)

// stopProfiles flushes any active pprof profiles; failIf and the end of
// main both call it so profiles survive error exits too.
var stopProfiles = func() {}

type renderer interface{ Render() string }

func render(r renderer, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, table1, table2, table3, fig2, fig3, fig4, ecm, nodeperf")
	workers := flag.Int("j", 1, "pipeline workers (0 = GOMAXPROCS)")
	format := flag.String("format", "text", "output format: text or json")
	cacheDir := flag.String("cache-dir", "", "persistent result store directory (empty = process-local cache only)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	stop, err := profiling.Start(*cpuprofile, *memprofile)
	failIf(err)
	stopProfiles = stop

	if *format != "text" && *format != "json" {
		fail(2, "repro: unknown format %q (want text or json)\n", *format)
	}
	nw := pipeline.SetDefaultWorkers(*workers)
	if *cacheDir != "" {
		if _, err := pipeline.AttachStore(*cacheDir); err != nil {
			fail(1, "repro: %v\n", err)
		}
	}

	runners := map[string]func() (string, error){
		"table1": func() (string, error) {
			t, err := experiments.RunTable1()
			return render(t, err)
		},
		"table2": func() (string, error) {
			t, err := experiments.RunTable2()
			return render(t, err)
		},
		"table3": func() (string, error) {
			t, err := experiments.RunTable3()
			return render(t, err)
		},
		"fig2": func() (string, error) {
			f, err := experiments.RunFig2()
			return render(f, err)
		},
		"fig3": func() (string, error) {
			f, err := experiments.RunFig3()
			return render(f, err)
		},
		"fig4": func() (string, error) {
			f, err := experiments.RunFig4()
			return render(f, err)
		},
		"ecm": func() (string, error) {
			s, err := experiments.RunECM()
			return render(s, err)
		},
		"nodeperf": func() (string, error) {
			s, err := experiments.RunNodePerf()
			return render(s, err)
		},
	}
	order := []string{"table1", "table2", "table3", "fig2", "fig3", "fig4", "ecm", "nodeperf"}

	names := []string{*exp}
	if *exp == "all" {
		names = order
	} else if _, ok := runners[*exp]; !ok {
		fail(2, "repro: unknown experiment %q (want one of %v)\n", *exp, order)
	}

	// Submit every requested experiment as one job graph (independent
	// today; dependencies slot in as experiments start sharing stages)
	// and render in the canonical order regardless of completion order.
	g := pipeline.NewGraph(pipeline.Default())
	for _, name := range names {
		fn := runners[name]
		if err := g.Add(name, func() (any, error) { return fn() }); err != nil {
			fail(1, "repro: %v\n", err)
		}
	}
	runErr := g.Run()

	if *format == "json" {
		outputs := make([]string, len(names))
		for i, name := range names {
			v, err := g.Result(name)
			if err != nil {
				fail(1, "repro: %s: %v\n", name, err)
			}
			s, ok := v.(string)
			if !ok { // graph-validation failure: nothing ran
				failIf(runErr)
			}
			outputs[i] = s
		}
		type expOut struct {
			Name   string `json:"name"`
			Output string `json:"output"`
		}
		doc := struct {
			Parallelism int            `json:"parallelism"`
			Experiments []expOut       `json:"experiments"`
			Cache       pipeline.Stats `json:"cache"`
			Store       *store.Stats   `json:"store,omitempty"`
		}{Parallelism: nw}
		for i, name := range names {
			doc.Experiments = append(doc.Experiments, expOut{Name: name, Output: outputs[i]})
		}
		doc.Cache = pipeline.Shared().Stats()
		if st := pipeline.PersistentStore(); st != nil {
			s := st.Stats()
			doc.Store = &s
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		failIf(enc.Encode(doc))
		return
	}

	// Text mode streams completed artifacts in canonical order up to the
	// first failure, which is reported under its experiment's name.
	for _, name := range names {
		v, err := g.Result(name)
		if err != nil {
			fail(1, "repro: %s: %v\n", name, err)
		}
		s, ok := v.(string)
		if !ok { // graph-validation failure: nothing ran
			failIf(runErr)
		}
		var sb strings.Builder
		if *exp == "all" {
			fmt.Fprintf(&sb, "================ %s ================\n", name)
		}
		sb.WriteString(s)
		sb.WriteByte('\n')
		os.Stdout.WriteString(sb.String())
	}
	failIf(runErr)
	st := pipeline.Shared().Stats()
	fmt.Fprintf(os.Stderr, "repro: pipeline j=%d, cache %d hits / %d misses (%d entries)\n",
		nw, st.Hits, st.Misses, st.Entries)
	if ps := pipeline.PersistentStore(); ps != nil {
		s := ps.Stats()
		fmt.Fprintf(os.Stderr, "repro: store %d warm / %d cold (mem %d, disk %d, evictions %d)\n",
			s.Warm(), s.Misses, s.MemHits, s.DiskHits, s.Evictions)
	}
	cs := pipeline.CompiledArtifacts().Stats()
	fmt.Fprintf(os.Stderr, "repro: compiled %d programs / %d skeletons / %d mca, %d hits + %d attaches / %d compiles (~%d KiB)\n",
		cs.Programs, cs.Skeletons, cs.MCA, cs.Hits, cs.Attaches, cs.Compiles, cs.BytesEstimated/1024)
	stopProfiles()
}

func failIf(err error) {
	if err != nil {
		fail(1, "repro: %v\n", err)
	}
}

// fail flushes any active profiles before exiting, so -cpuprofile output
// is valid even on usage and runtime errors.
func fail(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, format, args...)
	stopProfiles()
	os.Exit(code)
}
