// Command modelinfo dumps a machine model: ports, frontend parameters,
// memory pipeline, node-level calibration, and (optionally) the full
// instruction table with latencies, reciprocal throughputs, and port
// assignments — the data OSACA ships as machine files.
//
// Usage:
//
//	modelinfo                              # list registered models
//	modelinfo -keys                        # registered keys, one per line
//	modelinfo -arch zen4 [-instrs] [-mnemonic vaddpd]
//	modelinfo -arch zen4 -export zen4.json # write the machine file
//	modelinfo -machine custom.json         # inspect a machine file
//	modelinfo -machine-dir models/ -arch mykey
//	modelinfo -check a.json b.json ...     # validate machine files
//	modelinfo -diff a.json b.json          # parameter delta between two models
//
// -check loads every named machine file, validates it, and runs one
// smoke analysis through the in-core analyzer per loaded model, so a CI
// gate can prove exported/edited machine files stay loadable end to end.
// It exits non-zero on the first file that fails.
//
// -diff compares two machine files (or registered keys) field by field
// on their canonical wire forms and reports whether their fingerprints
// and port signatures agree — i.e. whether the two models would share
// result-cache entries (identical fingerprints) and whether a sweep or
// server would share compiled artifacts between them (identical port
// signatures; a node-only delta keeps the signature).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"incore/internal/core"
	"incore/internal/isa"
	"incore/internal/uarch"
)

func main() {
	arch := flag.String("arch", "", "machine model key (empty: list all)")
	machineFile := flag.String("machine", "", "inspect this JSON machine file instead of a registered model")
	machineDir := flag.String("machine-dir", "", "register every *.json machine file in this directory before resolving -arch")
	keys := flag.Bool("keys", false, "print the registered model keys, one per line")
	check := flag.Bool("check", false, "validate the machine files named as arguments (load + smoke analysis)")
	diff := flag.Bool("diff", false, "compare the two machine files (or registered keys) named as arguments")
	instrs := flag.Bool("instrs", false, "dump the instruction table")
	mnemonic := flag.String("mnemonic", "", "show only entries for this mnemonic")
	export := flag.String("export", "", "write the model as a JSON machine file to this path")
	flag.Parse()

	if *machineDir != "" {
		if _, err := uarch.LoadDir(*machineDir); err != nil {
			fmt.Fprintf(os.Stderr, "modelinfo: %v\n", err)
			os.Exit(1)
		}
	}
	if *check {
		if flag.NArg() == 0 {
			fmt.Fprintln(os.Stderr, "modelinfo: -check needs machine-file arguments")
			os.Exit(2)
		}
		for _, path := range flag.Args() {
			if err := checkFile(path); err != nil {
				fmt.Fprintf(os.Stderr, "modelinfo: %s: FAIL: %v\n", path, err)
				os.Exit(1)
			}
		}
		return
	}
	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "modelinfo: -diff needs exactly two machine files or keys")
			os.Exit(2)
		}
		if err := diffModels(flag.Arg(0), flag.Arg(1)); err != nil {
			fmt.Fprintf(os.Stderr, "modelinfo: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *keys {
		for _, k := range uarch.Keys() {
			fmt.Println(k)
		}
		return
	}

	var m *uarch.Model
	if *machineFile != "" {
		f, err := os.Open(*machineFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "modelinfo: %v\n", err)
			os.Exit(1)
		}
		m, err = uarch.ReadJSON(f)
		f.Close()
		if err == nil && *arch != "" && *arch != m.Key {
			err = fmt.Errorf("-arch %q does not match machine file key %q", *arch, m.Key)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "modelinfo: %v\n", err)
			os.Exit(1)
		}
	} else if *arch == "" {
		for _, rm := range uarch.All() {
			fmt.Printf("%-12s %s (%s), %d ports, %d entries\n",
				rm.Key, rm.Name, rm.CPU, len(rm.Ports), len(rm.Entries))
		}
		return
	} else {
		var err error
		m, err = uarch.Get(*arch)
		if err != nil {
			fmt.Fprintf(os.Stderr, "modelinfo: %v\n", err)
			os.Exit(1)
		}
	}
	if *export != "" {
		f, err := os.Create(*export)
		if err != nil {
			fmt.Fprintf(os.Stderr, "modelinfo: %v\n", err)
			os.Exit(1)
		}
		if err := m.WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "modelinfo: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "modelinfo: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("machine file written to %s\n", *export)
		return
	}
	fmt.Printf("%s — %s (%s, %s)\n", m.Key, m.Name, m.CPU, m.Vendor)
	fmt.Printf("fingerprint: %s\n", m.Fingerprint())
	if ck := m.CacheKey(); ck != m.Key {
		fmt.Printf("cache key: %s\n", ck)
	}
	fmt.Printf("ports (%d): %s\n", len(m.Ports), strings.Join(m.Ports, " "))
	fmt.Printf("frontend: decode %d, issue %d µops/cy, retire %d, ROB %d, scheduler %d\n",
		m.DecodeWidth, m.IssueWidth, m.RetireWidth, m.ROBSize, m.SchedSize)
	fmt.Printf("memory: load ports %s (L1 lat %d cy, %d-bit), store AGU %s, store data %s (%d-bit)\n",
		portNames(m, m.LoadPorts), m.LoadLat, m.LoadWidthBits,
		portNames(m, m.StoreAGUPorts), portNames(m, m.StoreDataPorts), m.StoreWidthBits)
	if m.WideLoadBits > 0 {
		fmt.Printf("        loads >= %d bit restricted to %s\n", m.WideLoadBits, portNames(m, m.WideLoadPorts))
	}
	fmt.Printf("SIMD: %d bit native, %d FP vector units, %d integer units\n",
		m.VecWidth, m.FPVectorUnits, m.IntUnits)
	fmt.Printf("chip: %d cores, %.2f GHz base / %.2f GHz max\n",
		m.CoresPerChip, m.BaseFreqGHz, m.MaxFreqGHz)
	if np := m.Node; np != nil {
		fmt.Printf("node: %.1f GB/s sustained, %d flops/cy/core", np.MemBWGBs, np.FlopsPerCycle)
		if np.ECM != nil {
			fmt.Printf(", ECM %g/%g B/cy", np.ECM.L1L2BytesPerCycle, np.ECM.L2L3BytesPerCycle)
		}
		if np.Freq != nil {
			fmt.Printf(", governor TDP %.0f W", np.Freq.TDPWatts)
			if np.Freq.WidestVectorExt != "" {
				fmt.Printf(" (widest %s)", np.Freq.WidestVectorExt)
			}
		}
		fmt.Println()
	}

	if !*instrs && *mnemonic == "" {
		return
	}
	fmt.Printf("\n%-16s %-10s %5s %4s %6s  %s\n", "mnemonic", "sig", "width", "lat", "rtp", "ports")
	entries := append([]uarch.Entry(nil), m.Entries...)
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].Mnemonic != entries[j].Mnemonic {
			return entries[i].Mnemonic < entries[j].Mnemonic
		}
		return entries[i].Width < entries[j].Width
	})
	for _, e := range entries {
		if *mnemonic != "" && e.Mnemonic != *mnemonic {
			continue
		}
		var ports []string
		rtp := 0.0
		for _, u := range e.Uops {
			ports = append(ports, fmt.Sprintf("%s:%.1f", portNames(m, u.Ports), u.Cycles))
			share := u.Cycles / float64(u.Ports.Count())
			if share > rtp {
				rtp = share
			}
		}
		fmt.Printf("%-16s %-10s %5d %4d %6.2f  %s\n",
			e.Mnemonic, e.Sig, e.Width, e.Lat, rtp, strings.Join(ports, " "))
	}
}

// smokeBlocks are minimal per-dialect loop bodies every plausible
// machine model can describe; -check runs one through the analyzer to
// prove a loaded file works end to end, not just structurally.
var smokeBlocks = map[isa.Dialect]string{
	isa.DialectX86:     "\taddq $8, %rax\n\tcmpq %rbx, %rax\n\tjb .L0\n",
	isa.DialectAArch64: "\tadd x0, x0, #8\n\tcmp x0, x1\n\tb.lt .L0\n",
}

// checkFile validates one machine file: parse + Validate (ReadJSON), a
// write→read round trip that must preserve the fingerprint, and one
// smoke analysis.
func checkFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	m, err := uarch.ReadJSON(f)
	f.Close()
	if err != nil {
		return err
	}
	var buf strings.Builder
	if err := m.WriteJSON(&buf); err != nil {
		return err
	}
	reloaded, err := uarch.ReadJSON(strings.NewReader(buf.String()))
	if err != nil {
		return fmt.Errorf("re-load of canonical form: %w", err)
	}
	if reloaded.Fingerprint() != m.Fingerprint() {
		return fmt.Errorf("fingerprint not stable across round trip: %s vs %s", m.Fingerprint(), reloaded.Fingerprint())
	}
	src, ok := smokeBlocks[m.Dialect]
	if !ok {
		return fmt.Errorf("no smoke block for dialect %v", m.Dialect)
	}
	b, err := isa.ParseBlock("smoke", m.Key, m.Dialect, src)
	if err != nil {
		return err
	}
	res, err := core.New().Analyze(b, m)
	if err != nil {
		return fmt.Errorf("smoke analysis: %w", err)
	}
	fmt.Printf("OK %s: %s fingerprint=%s cache-key=%s smoke=%.2f cy/it\n",
		path, m.Key, m.Fingerprint()[:12], m.CacheKey(), res.Prediction)
	return nil
}

// loadModelArg resolves one -diff argument: a machine-file path if the
// file exists, a registered model key otherwise. Files go through
// ReadJSON (not LoadFile) so diffing never mutates the registry.
func loadModelArg(arg string) (*uarch.Model, error) {
	f, err := os.Open(arg)
	if err != nil {
		if m, gerr := uarch.Get(arg); gerr == nil {
			return m, nil
		}
		return nil, fmt.Errorf("%s: not a readable machine file (%v) or registered key", arg, err)
	}
	defer f.Close()
	m, err := uarch.ReadJSON(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", arg, err)
	}
	return m, nil
}

// wireMap renders a model's canonical machine-file form as a generic
// map, so the diff compares exactly what the fingerprint hashes.
func wireMap(m *uarch.Model) (map[string]json.RawMessage, error) {
	var buf strings.Builder
	if err := m.WriteJSON(&buf); err != nil {
		return nil, err
	}
	var out map[string]json.RawMessage
	if err := json.Unmarshal([]byte(buf.String()), &out); err != nil {
		return nil, err
	}
	return out, nil
}

// diffModels prints the field-level delta between two models' canonical
// wire forms, an instruction-table summary, and the two identity
// verdicts: fingerprint (result-cache sharing) and port signature
// (compiled-artifact sharing).
func diffModels(aArg, bArg string) error {
	a, err := loadModelArg(aArg)
	if err != nil {
		return err
	}
	b, err := loadModelArg(bArg)
	if err != nil {
		return err
	}
	wa, err := wireMap(a)
	if err != nil {
		return err
	}
	wb, err := wireMap(b)
	if err != nil {
		return err
	}

	fields := map[string]bool{}
	for k := range wa {
		fields[k] = true
	}
	for k := range wb {
		fields[k] = true
	}
	names := make([]string, 0, len(fields))
	for k := range fields {
		names = append(names, k)
	}
	sort.Strings(names)

	changed := 0
	render := func(raw json.RawMessage, ok bool) string {
		if !ok {
			return "(absent)"
		}
		var buf bytes.Buffer
		s := string(raw)
		if json.Compact(&buf, raw) == nil {
			s = buf.String()
		}
		if len(s) > 64 {
			s = s[:61] + "..."
		}
		return s
	}
	for _, k := range names {
		if k == "instructions" {
			continue
		}
		va, oka := wa[k]
		vb, okb := wb[k]
		if oka == okb && string(va) == string(vb) {
			continue
		}
		changed++
		fmt.Printf("%-20s %s -> %s\n", k, render(va, oka), render(vb, okb))
	}

	added, removed, edited := diffEntries(a.Entries, b.Entries)
	if added+removed+edited > 0 {
		changed++
		fmt.Printf("%-20s %d entries -> %d entries (%d added, %d removed, %d changed)\n",
			"instructions", len(a.Entries), len(b.Entries), added, removed, edited)
	}
	if changed == 0 {
		fmt.Println("models are identical")
	}

	if a.Fingerprint() == b.Fingerprint() {
		fmt.Printf("fingerprints: identical (%s) — the models share result-cache entries\n", a.Fingerprint()[:12])
	} else {
		fmt.Printf("fingerprints: differ (%s vs %s) — results are cached separately\n",
			a.Fingerprint()[:12], b.Fingerprint()[:12])
	}
	if a.PortSignature() == b.PortSignature() {
		fmt.Printf("port signatures: identical (%s) — compiled artifacts (descriptors, schedules, programs) are shared\n",
			a.PortSignature()[:12])
	} else {
		fmt.Printf("port signatures: differ (%s vs %s) — port-dependent artifacts compile per model\n",
			a.PortSignature()[:12], b.PortSignature()[:12])
	}
	return nil
}

// diffEntries summarizes the instruction-table delta, keyed by
// (mnemonic, sig, width).
func diffEntries(ea, eb []uarch.Entry) (added, removed, edited int) {
	type key struct {
		mnemonic, sig string
		width         int
	}
	index := func(es []uarch.Entry) map[key]string {
		m := make(map[key]string, len(es))
		for _, e := range es {
			j, _ := json.Marshal(e)
			m[key{e.Mnemonic, e.Sig, e.Width}] = string(j)
		}
		return m
	}
	ma, mb := index(ea), index(eb)
	for k, vb := range mb {
		va, ok := ma[k]
		switch {
		case !ok:
			added++
		case va != vb:
			edited++
		}
	}
	for k := range ma {
		if _, ok := mb[k]; !ok {
			removed++
		}
	}
	return added, removed, edited
}

func portNames(m *uarch.Model, mask uarch.PortMask) string {
	var names []string
	for _, i := range mask.Indices() {
		names = append(names, m.Ports[i])
	}
	return "[" + strings.Join(names, ",") + "]"
}
