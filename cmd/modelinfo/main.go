// Command modelinfo dumps a machine model: ports, frontend parameters,
// memory pipeline, and (optionally) the full instruction table with
// latencies, reciprocal throughputs, and port assignments — the data
// OSACA ships as machine files.
//
// Usage:
//
//	modelinfo -arch zen4 [-instrs] [-mnemonic vaddpd]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"incore/internal/uarch"
)

func main() {
	arch := flag.String("arch", "", "machine model key (empty: list all)")
	instrs := flag.Bool("instrs", false, "dump the instruction table")
	mnemonic := flag.String("mnemonic", "", "show only entries for this mnemonic")
	export := flag.String("export", "", "write the model as a JSON machine file to this path")
	flag.Parse()

	if *arch == "" {
		for _, m := range uarch.All() {
			fmt.Printf("%-12s %s (%s), %d ports, %d entries\n",
				m.Key, m.Name, m.CPU, len(m.Ports), len(m.Entries))
		}
		return
	}
	m, err := uarch.Get(*arch)
	if err != nil {
		fmt.Fprintf(os.Stderr, "modelinfo: %v\n", err)
		os.Exit(1)
	}
	if *export != "" {
		f, err := os.Create(*export)
		if err != nil {
			fmt.Fprintf(os.Stderr, "modelinfo: %v\n", err)
			os.Exit(1)
		}
		if err := m.WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "modelinfo: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "modelinfo: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("machine file written to %s\n", *export)
		return
	}
	fmt.Printf("%s — %s (%s, %s)\n", m.Key, m.Name, m.CPU, m.Vendor)
	fmt.Printf("ports (%d): %s\n", len(m.Ports), strings.Join(m.Ports, " "))
	fmt.Printf("frontend: decode %d, issue %d µops/cy, retire %d, ROB %d, scheduler %d\n",
		m.DecodeWidth, m.IssueWidth, m.RetireWidth, m.ROBSize, m.SchedSize)
	fmt.Printf("memory: load ports %s (L1 lat %d cy, %d-bit), store AGU %s, store data %s (%d-bit)\n",
		portNames(m, m.LoadPorts), m.LoadLat, m.LoadWidthBits,
		portNames(m, m.StoreAGUPorts), portNames(m, m.StoreDataPorts), m.StoreWidthBits)
	if m.WideLoadBits > 0 {
		fmt.Printf("        loads >= %d bit restricted to %s\n", m.WideLoadBits, portNames(m, m.WideLoadPorts))
	}
	fmt.Printf("SIMD: %d bit native, %d FP vector units, %d integer units\n",
		m.VecWidth, m.FPVectorUnits, m.IntUnits)
	fmt.Printf("chip: %d cores, %.2f GHz base / %.2f GHz max\n",
		m.CoresPerChip, m.BaseFreqGHz, m.MaxFreqGHz)

	if !*instrs && *mnemonic == "" {
		return
	}
	fmt.Printf("\n%-16s %-10s %5s %4s %6s  %s\n", "mnemonic", "sig", "width", "lat", "rtp", "ports")
	entries := append([]uarch.Entry(nil), m.Entries...)
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].Mnemonic != entries[j].Mnemonic {
			return entries[i].Mnemonic < entries[j].Mnemonic
		}
		return entries[i].Width < entries[j].Width
	})
	for _, e := range entries {
		if *mnemonic != "" && e.Mnemonic != *mnemonic {
			continue
		}
		var ports []string
		rtp := 0.0
		for _, u := range e.Uops {
			ports = append(ports, fmt.Sprintf("%s:%.1f", portNames(m, u.Ports), u.Cycles))
			share := u.Cycles / float64(u.Ports.Count())
			if share > rtp {
				rtp = share
			}
		}
		fmt.Printf("%-16s %-10s %5d %4d %6.2f  %s\n",
			e.Mnemonic, e.Sig, e.Width, e.Lat, rtp, strings.Join(ports, " "))
	}
}

func portNames(m *uarch.Model, mask uarch.PortMask) string {
	var names []string
	for _, i := range mask.Indices() {
		names = append(names, m.Ports[i])
	}
	return "[" + strings.Join(names, ",") + "]"
}
