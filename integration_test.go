// Cross-component integration and property tests: random (but valid)
// instruction blocks are generated for each architecture and pushed
// through the analyzer, the baseline, and the simulator, asserting the
// library-wide invariants:
//
//  1. every generated block parses, analyses, and simulates without error,
//  2. the analyzer's prediction is a lower bound on the quirk-free
//     simulated measurement,
//  3. all three tools are deterministic.
package incore_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"incore/internal/core"
	"incore/internal/isa"
	"incore/internal/mca"
	"incore/internal/sim"
	"incore/internal/uarch"
)

// randomBlock builds a random loop body of nInstr instructions for the
// given architecture using a mix of FP arithmetic, moves, loads, and
// stores, closed by a standard loop end.
func randomBlock(t *testing.T, rng *rand.Rand, arch string, nInstr int) *isa.Block {
	t.Helper()
	m := uarch.MustGet(arch)
	var sb strings.Builder
	sb.WriteString(".L0:\n")
	if m.Dialect == isa.DialectX86 {
		pfx := "zmm"
		if m.VecWidth == 256 {
			pfx = "ymm"
		}
		bases := []string{"rsi", "rdx", "rcx"}
		ops := []string{"vaddpd", "vmulpd", "vsubpd", "vfmadd231pd", "vmaxpd"}
		for i := 0; i < nInstr; i++ {
			d := rng.Intn(8)
			a := 8 + rng.Intn(4)
			b := 12 + rng.Intn(4)
			switch rng.Intn(5) {
			case 0: // load
				fmt.Fprintf(&sb, "\tvmovupd (%%%s,%%rax,8), %%%s%d\n", bases[rng.Intn(len(bases))], pfx, d)
			case 1: // store
				fmt.Fprintf(&sb, "\tvmovupd %%%s%d, (%%rdi,%%rax,8)\n", pfx, rng.Intn(8))
			case 2: // folded-load arithmetic
				fmt.Fprintf(&sb, "\t%s (%%%s,%%rax,8), %%%s%d, %%%s%d\n",
					ops[rng.Intn(3)], bases[rng.Intn(len(bases))], pfx, a, pfx, d)
			default: // register arithmetic
				fmt.Fprintf(&sb, "\t%s %%%s%d, %%%s%d, %%%s%d\n", ops[rng.Intn(len(ops))], pfx, a, pfx, b, pfx, d)
			}
		}
		sb.WriteString("\taddq $8, %rax\n\tcmpq %rbx, %rax\n\tjne .L0\n")
	} else {
		ops := []string{"fadd", "fmul", "fsub", "fmax"}
		for i := 0; i < nInstr; i++ {
			d := rng.Intn(8)
			a := 8 + rng.Intn(4)
			b := 12 + rng.Intn(4)
			switch rng.Intn(5) {
			case 0:
				fmt.Fprintf(&sb, "\tldr q%d, [x%d, x3]\n", d, 1+rng.Intn(2))
			case 1:
				fmt.Fprintf(&sb, "\tstr q%d, [x0, x3]\n", rng.Intn(8))
			case 2:
				fmt.Fprintf(&sb, "\tfmla v%d.2d, v%d.2d, v%d.2d\n", d, a, b)
			default:
				fmt.Fprintf(&sb, "\t%s v%d.2d, v%d.2d, v%d.2d\n", ops[rng.Intn(len(ops))], d, a, b)
			}
		}
		sb.WriteString("\tadd x3, x3, #16\n\tcmp x3, x4\n\tb.ne .L0\n")
	}
	b, err := isa.ParseBlock(fmt.Sprintf("rand-%s", arch), arch, m.Dialect, sb.String())
	if err != nil {
		t.Fatalf("random block does not parse: %v\n%s", err, sb.String())
	}
	return b
}

// quirkFreeConfig disables the hardware-beats-model mechanisms so the
// lower-bound property holds unconditionally.
func quirkFreeConfig(m *uarch.Model) sim.Config {
	cfg := sim.DefaultConfig(m)
	cfg.FMAAccForwardLat = 0
	cfg.CrossOpForwardSave = 0
	cfg.DivEarlyExitFactor = 1
	return cfg
}

func TestRandomBlocksLowerBoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	an := core.New()
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		for _, arch := range []string{"goldencove", "zen4", "neoversev2"} {
			m := uarch.MustGet(arch)
			b := randomBlock(t, rng, arch, 2+rng.Intn(12))
			res, err := an.Analyze(b, m)
			if err != nil {
				t.Fatalf("%s trial %d: analyze: %v\n%s", arch, trial, err, b.Text())
			}
			meas, err := sim.Run(b, m, quirkFreeConfig(m))
			if err != nil {
				t.Fatalf("%s trial %d: sim: %v", arch, trial, err)
			}
			if res.Prediction > meas.CyclesPerIter*1.02+0.05 {
				t.Errorf("%s trial %d: prediction %.2f exceeds quirk-free measurement %.2f\n%s",
					arch, trial, res.Prediction, meas.CyclesPerIter, b.Text())
			}
			if _, err := mca.PredictDefault(b, m); err != nil {
				t.Fatalf("%s trial %d: mca: %v", arch, trial, err)
			}
		}
	}
}

func TestRandomBlocksDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		b := randomBlock(t, rng, "zen4", 8)
		m := uarch.MustGet("zen4")
		r1, err := sim.Run(b, m, sim.DefaultConfig(m))
		if err != nil {
			t.Fatal(err)
		}
		r2, err := sim.Run(b, m, sim.DefaultConfig(m))
		if err != nil {
			t.Fatal(err)
		}
		if r1.CyclesPerIter != r2.CyclesPerIter {
			t.Errorf("simulation not deterministic on random block")
		}
		p1, err := core.New().Predict(b, m)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := core.New().Predict(b, m)
		if err != nil {
			t.Fatal(err)
		}
		if p1 != p2 {
			t.Error("analyzer not deterministic on random block")
		}
	}
}

// TestQuirkyMeasurementNeverSlower: enabling the hardware quirks can only
// make the simulated machine faster, never slower.
func TestQuirkyMeasurementNeverSlower(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		for _, arch := range []string{"neoversev2", "zen4"} {
			m := uarch.MustGet(arch)
			b := randomBlock(t, rng, arch, 2+rng.Intn(10))
			quirky, err := sim.Run(b, m, sim.DefaultConfig(m))
			if err != nil {
				t.Fatal(err)
			}
			plain, err := sim.Run(b, m, quirkFreeConfig(m))
			if err != nil {
				t.Fatal(err)
			}
			if quirky.CyclesPerIter > plain.CyclesPerIter*1.02+0.05 {
				t.Errorf("%s trial %d: quirks slowed the machine: %.2f vs %.2f\n%s",
					arch, trial, quirky.CyclesPerIter, plain.CyclesPerIter, b.Text())
			}
		}
	}
}
