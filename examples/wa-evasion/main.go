// WA evasion: reproduce the paper's Sec. III case study interactively.
//
// The example runs the store-only benchmark on all three memory-system
// models at a few core counts, showing how Grace's automatic cache-line
// claim, SPR's bandwidth-gated SpecI2M, and Genoa's lack of automatic
// evasion shape the memory traffic — and how non-temporal stores change
// the picture.
//
// Run with:
//
//	go run ./examples/wa-evasion
package main

import (
	"fmt"
	"log"

	"incore/internal/memsim"
	"incore/internal/nodes"
)

func main() {
	fmt.Println("Store-only benchmark: memory traffic / stored bytes")
	fmt.Println("(1.0 = perfect write-allocate evasion, 2.0 = full write-allocate)")
	fmt.Println()
	for _, key := range []string{"neoversev2", "goldencove", "zen4"} {
		n, err := nodes.Get(key)
		if err != nil {
			log.Fatal(err)
		}
		cfg, err := memsim.ConfigFor(key)
		if err != nil {
			log.Fatal(err)
		}
		sys, err := memsim.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%s, policy %s):\n", n.Name, key, cfg.Policy)
		for _, frac := range []float64{0.1, 0.5, 1.0} {
			c := int(frac * float64(n.Cores))
			if c < 1 {
				c = 1
			}
			std, err := sys.RunStoreStream(c, memsim.DefaultStoreLinesPerCore, false)
			if err != nil {
				log.Fatal(err)
			}
			line := fmt.Sprintf("  %3d cores: standard %.2f", c, std.WARatio())
			if key != "neoversev2" {
				nt, err := sys.RunStoreStream(c, memsim.DefaultStoreLinesPerCore, true)
				if err != nil {
					log.Fatal(err)
				}
				line += fmt.Sprintf("   NT stores %.2f", nt.WARatio())
			}
			fmt.Println(line)
		}
		fmt.Println()
	}
	fmt.Println("Compare paper Fig. 4: only Grace evades WA automatically; SpecI2M")
	fmt.Println("saves at most ~25% and only near saturation; Genoa needs NT stores,")
	fmt.Println("which are perfect there but leave ~10% residual traffic on SPR.")
}
