// ECM stencil study: the paper's future work, executed.
//
// The paper closes with: "In future work, we plan to continue these
// investigations by applying our in-core model to a node-wide performance
// model such as the Execution-Cache-Memory (ECM) model." This example does
// exactly that: it feeds the in-core analysis of the 3D 7-point Jacobi
// stencil into the ECM model for all three machines, predicts
// cycles-per-cache-line for every memory level, and derives the multicore
// saturation point — including the effect of each machine's
// write-allocate behaviour on the memory-level transfer time.
//
// Run with:
//
//	go run ./examples/ecm-stencil
package main

import (
	"fmt"
	"log"

	"incore/internal/core"
	"incore/internal/ecm"
	"incore/internal/kernels"
	"incore/internal/roofline"
	"incore/internal/uarch"
)

func main() {
	k, err := kernels.ByName("j3d7")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ECM study: 3D 7-point Jacobi — %s\n\n", k.Doc)
	for _, arch := range []string{"neoversev2", "goldencove", "zen4"} {
		m := uarch.MustGet(arch)
		comp := kernels.CompilersFor(arch)[0]
		cfg := kernels.Config{Arch: arch, Compiler: comp, Opt: kernels.Ofast}
		b, err := kernels.Generate(k, cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.New().Analyze(b, m)
		if err != nil {
			log.Fatal(err)
		}
		elems := kernels.ElemsPerIter(k, cfg)
		tOL, tnOL, err := ecm.InCoreInputs(res, elems)
		if err != nil {
			log.Fatal(err)
		}
		em, err := ecm.For(arch)
		if err != nil {
			log.Fatal(err)
		}
		wa := ecm.WAFactorFor(arch, true)
		tr := ecm.TrafficForKernel(k, wa)
		fmt.Printf("--- %s (%s, WA factor %.2f) ---\n", em.Core.Name, arch, wa)
		for _, level := range []ecm.MemLevel{ecm.L1, ecm.L2, ecm.L3, ecm.MEM} {
			r := em.Predict(tOL, tnOL, tr, level)
			fmt.Print(r.Report())
		}
		fmt.Println()
	}

	fmt.Println("Roofline context (sustained vector ceilings):")
	for _, arch := range []string{"neoversev2", "goldencove", "zen4"} {
		rl, err := roofline.For(arch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(rl.Render())
	}
	fmt.Println("\nGrace's automatic write-allocate evasion shows up directly in the")
	fmt.Println("ECM memory term: the stencil moves 5 load lines + 1 store line on")
	fmt.Println("Grace but 5 + 2 effective lines on Genoa (write-allocate).")
}
