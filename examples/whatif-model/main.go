// What-if modeling with custom machine files.
//
// The point of having editable machine models (cmd/modelinfo -export +
// cmd/osaca -machine) is design-space exploration: what would a kernel gain
// if the microarchitecture changed? This example clones the Zen 4 model
// in memory, applies two hypothetical modifications —
//
//  1. a second store-data port (Zen 4's 1x256-bit store port is the
//     bottleneck for store-heavy streams, see Table II), and
//  2. a full-width 512-bit datapath (no double-pumping),
//
// — and compares the in-core predictions for the STREAM triad and the
// 27-point stencil against the real model.
//
// Run with:
//
//	go run ./examples/whatif-model
package main

import (
	"bytes"
	"fmt"
	"log"

	"incore/internal/core"
	"incore/internal/kernels"
	"incore/internal/uarch"
)

// clone round-trips a model through its JSON machine file, yielding an
// independent copy safe to mutate.
func clone(m *uarch.Model) *uarch.Model {
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		log.Fatal(err)
	}
	c, err := uarch.ReadJSON(&buf)
	if err != nil {
		log.Fatal(err)
	}
	return c
}

func main() {
	base := uarch.MustGet("zen4")

	// Variant 1: add a second store-data port (reuse AGU1 as SD2 is not
	// possible — extend the port list instead).
	twoStores := clone(base)
	twoStores.Key = "zen4+2xSD"
	twoStores.Name = "Zen 4 (hypothetical: 2 store ports)"
	twoStores.Ports = append(twoStores.Ports, "SD2")
	twoStores.StoreDataPorts |= 1 << uint(len(twoStores.Ports)-1)
	twoStores.StoreAGUPorts |= 1 << uint(twoStores.PortIndex("AGU1"))
	// Reindex refreshes the lookup tables and the content fingerprint,
	// so the variant's CacheKey reflects the mutation and its cached
	// results can never collide with the real zen4's.
	if err := twoStores.Reindex(); err != nil {
		log.Fatal(err)
	}

	// Variant 2: full 512-bit datapath — 512-bit entries become single
	// µ-ops (drop the double-pumping) and wide loads/stores pass whole.
	native512 := clone(base)
	native512.Key = "zen4+512"
	native512.Name = "Zen 4 (hypothetical: native 512-bit)"
	native512.VecWidth = 512
	native512.LoadWidthBits = 512
	native512.StoreWidthBits = 512
	for i := range native512.Entries {
		e := &native512.Entries[i]
		if e.Width == 512 && len(e.Uops) == 2 && e.Uops[0].Ports == e.Uops[1].Ports {
			e.Uops = e.Uops[:1]
		}
	}
	if err := native512.Reindex(); err != nil {
		log.Fatal(err)
	}

	an := core.New()
	for _, kname := range []string{"striad", "j3d27", "init"} {
		k, err := kernels.ByName(kname)
		if err != nil {
			log.Fatal(err)
		}
		cfg := kernels.Config{Arch: "zen4", Compiler: kernels.GCC, Opt: kernels.Ofast}
		b, err := kernels.Generate(k, cfg)
		if err != nil {
			log.Fatal(err)
		}
		elems := kernels.ElemsPerIter(k, cfg)
		fmt.Printf("%s (%s), %d elements/iteration:\n", kname, k.Doc, elems)
		baseCy := 0.0
		for _, m := range []*uarch.Model{base, twoStores, native512} {
			res, err := an.Analyze(b, m)
			if err != nil {
				log.Fatal(err)
			}
			cpe := res.Prediction / float64(elems)
			note := ""
			if m == base {
				baseCy = cpe
			} else {
				note = fmt.Sprintf("  (%+.0f%%)", 100*(baseCy/cpe-1))
			}
			fmt.Printf("  %-42s %6.3f cy/elem  [%s bound]%s\n", m.Name, cpe, res.Bound, note)
		}
		fmt.Println()
	}
	fmt.Println("The second store port pays off exactly where Table II predicts —")
	fmt.Println("store-limited streams — while the 512-bit datapath helps the")
	fmt.Println("µ-op-count-limited (frontend-bound) kernels.")
}
