// Stencil analysis: compare one kernel across all three
// microarchitectures and all compiler variants.
//
// This example generates the 2D 5-point Jacobi stencil exactly as the
// paper's compiler matrix does (gcc/clang/icx/armclang x O1..Ofast),
// predicts each variant's in-core runtime on its target machine, verifies
// against the simulated measurement, and reports cycles per lattice
// update — the quantity an HPC practitioner actually tunes for.
//
// Run with:
//
//	go run ./examples/stencil-analysis
package main

import (
	"fmt"
	"log"

	"incore/internal/core"
	"incore/internal/kernels"
	"incore/internal/sim"
	"incore/internal/uarch"
)

func main() {
	k, err := kernels.ByName("j2d5")
	if err != nil {
		log.Fatal(err)
	}
	an := core.New()
	fmt.Printf("2D 5-point Jacobi: %s\n\n", k.Doc)
	fmt.Printf("%-34s %14s %14s %12s\n", "variant", "pred [cy/it]", "meas [cy/it]", "cy/update")
	for _, arch := range []string{"neoversev2", "goldencove", "zen4"} {
		m := uarch.MustGet(arch)
		for _, comp := range kernels.CompilersFor(arch) {
			for _, opt := range kernels.AllOptLevels() {
				cfg := kernels.Config{Arch: arch, Compiler: comp, Opt: opt}
				b, err := kernels.Generate(k, cfg)
				if err != nil {
					log.Fatal(err)
				}
				res, err := an.Analyze(b, m)
				if err != nil {
					log.Fatal(err)
				}
				meas, err := sim.Run(b, m, sim.DefaultConfig(m))
				if err != nil {
					log.Fatal(err)
				}
				elems := kernels.ElemsPerIter(k, cfg)
				fmt.Printf("%-34s %14.2f %14.2f %12.3f\n",
					b.Name, res.Prediction, meas.CyclesPerIter,
					meas.CyclesPerIter/float64(elems))
			}
		}
		fmt.Println()
	}
	fmt.Println("Lower numbers are better; vectorized Ofast variants approach the")
	fmt.Println("load/store port bound, scalar O1 variants the frontend bound.")
}
