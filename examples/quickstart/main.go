// Quickstart: analyse an assembly loop body with the in-core model.
//
// This example parses a STREAM-triad loop for Sapphire Rapids (Golden
// Cove), runs the OSACA-style analyzer, prints the port-pressure report,
// and compares the lower-bound prediction with a simulated measurement and
// the LLVM-MCA-style baseline.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"incore/internal/core"
	"incore/internal/isa"
	"incore/internal/mca"
	"incore/internal/sim"
	"incore/internal/uarch"
)

const triad = `
.L0:
	vmovupd (%rsi,%rax,8), %zmm0
	vfmadd231pd (%rdx,%rax,8), %zmm15, %zmm0
	vmovupd %zmm0, (%rdi,%rax,8)
	addq $8, %rax
	cmpq %rbx, %rax
	jne .L0
`

func main() {
	m, err := uarch.Get("goldencove")
	if err != nil {
		log.Fatal(err)
	}
	block, err := isa.ParseBlock("stream-triad", m.Key, m.Dialect, triad)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Static lower-bound analysis (the paper's in-core model).
	res, err := core.New().Analyze(block, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())

	// 2. Simulated measurement (stand-in for the real machine).
	meas, err := sim.Run(block, m, sim.DefaultConfig(m))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Baseline comparator.
	base, err := mca.PredictDefault(block, m)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nsimulated measurement : %6.2f cy/it\n", meas.CyclesPerIter)
	fmt.Printf("llvm-mca-style model  : %6.2f cy/it\n", base.CyclesPerIter)
	fmt.Printf("in-core lower bound   : %6.2f cy/it (%s-bound)\n", res.Prediction, res.Bound)

	elems := 8 // one zmm iteration processes 8 doubles
	cpe, err := core.CyclesPerElement(res.Prediction, elems)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lower bound per element: %.3f cy  -> %.1f GFlop/s at %.1f GHz (1 FMA/elem)\n",
		cpe, 2.0/cpe*m.BaseFreqGHz, m.BaseFreqGHz)
}
