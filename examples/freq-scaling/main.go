// Frequency scaling: what sustained clock can a kernel expect?
//
// The example combines the frequency governor (Fig. 2) with the in-core
// model: it predicts node-level GFlop/s for a vectorized FMA kernel as a
// function of active cores, showing why Grace can beat SPR for
// AVX-512-heavy code despite a much narrower SIMD unit — the 1.7x
// sustained-frequency advantage.
//
// Run with:
//
//	go run ./examples/freq-scaling
package main

import (
	"fmt"
	"log"

	"incore/internal/freq"
	"incore/internal/isa"
	"incore/internal/nodes"
)

func main() {
	type system struct {
		key   string
		ext   isa.Ext
		label string
	}
	systems := []system{
		{"neoversev2", isa.ExtSVE, "GCS (SVE 128-bit)"},
		{"goldencove", isa.ExtAVX512, "SPR (AVX-512)"},
		{"zen4", isa.ExtAVX512, "Genoa (AVX-512, double-pumped)"},
	}
	fmt.Println("Peak FMA GFlop/s at sustained frequency vs. active cores")
	fmt.Println()
	for _, s := range systems {
		n, err := nodes.Get(s.key)
		if err != nil {
			log.Fatal(err)
		}
		g, err := freq.For(s.key)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s — %d flops/cycle/core:\n", s.label, n.FlopsPerCycle())
		for _, fr := range []float64{0.25, 0.5, 0.75, 1.0} {
			c := int(fr * float64(n.Cores))
			if c < 1 {
				c = 1
			}
			f, err := g.Sustained(c, s.ext)
			if err != nil {
				log.Fatal(err)
			}
			gf := float64(c) * float64(n.FlopsPerCycle()) * f
			fmt.Printf("  %3d cores @ %.2f GHz: %8.0f GFlop/s\n", c, f, gf)
		}
		fmt.Println()
	}
	fmt.Println("SPR pays for its 512-bit units with AVX-512 throttling to 2.0 GHz;")
	fmt.Println("Grace holds 3.4 GHz across the socket (paper Fig. 2).")
}
