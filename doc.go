// Package incore is a from-scratch Go reproduction of "Microarchitectural
// comparison and in-core modeling of state-of-the-art CPUs: Grace,
// Sapphire Rapids, and Genoa" (Laukemann, Hager, Wellein; SC 2024,
// arXiv:2409.08108).
//
// The library builds OSACA-style in-core port models for the Neoverse V2,
// Golden Cove, and Zen 4 microarchitectures and validates them — in the
// absence of the real machines — against a cycle-level out-of-order core
// simulator, an LLVM-MCA-style baseline predictor, a multi-core cache and
// memory-traffic simulator (write-allocate evasion study), and a TDP-based
// frequency governor.
//
// Entry points:
//
//   - internal/core: the in-core analyzer (the paper's contribution)
//   - internal/uarch: the machine-model registry (content-fingerprinted,
//     runtime-extensible via JSON machine files)
//   - internal/sim: the simulated "hardware"
//   - internal/experiments: one runner per paper table/figure
//   - internal/store: persistent content-addressed result store
//   - internal/serve: the analyzer as an HTTP JSON API
//   - cmd/repro, cmd/osaca, cmd/wabench, cmd/serve: command-line tools
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and experiment index, and EXPERIMENTS.md for paper-vs-measured
// results.
package incore
